"""End-to-end serving tests against the real scheduler and CLI.

These pin the PR's acceptance criteria:

* a run whose PIM quarantines exceed the degradation threshold
  completes in GPU_ONLY mode with the degradation events recorded,
  instead of raising ``FaultError``;
* an interrupted campaign resumed from its checkpoint produces output
  byte-identical to the uninterrupted run (``repro serve --smoke``).
"""

import json

import pytest

from repro.cli import main
from repro.core.framework import AnaheimFramework
from repro.faults.plan import default_plan
from repro.gpu.configs import A100_80GB
from repro.pim.configs import A100_NEAR_BANK
from repro.serving import BreakerBoard, HealthMonitor, JobRunner, \
    ServePolicy, parse_jobs
from repro.workloads.applications import build


@pytest.fixture(scope="module")
def boot():
    from repro.params import paper_params
    params = paper_params()
    return build("Boot", params), params


class TestGracefulDegradation:
    def test_quarantine_overflow_completes_gpu_only(self, boot):
        """Two stuck sites push past gpu_only_after=2: the run must
        finish on the GPU with the events in the fault summary."""
        workload, params = boot
        plan = default_plan(seed=0, stuck_sites=(1, 5))
        health = HealthMonitor(degraded_after=1, gpu_only_after=2)
        framework = AnaheimFramework(
            A100_80GB, A100_NEAR_BANK, fault_plan=plan, health=health,
            breakers=BreakerBoard())
        result = framework.run(workload.blocks, params.degree,
                               label="Boot (degrading)")

        summary = result.report.fault_summary
        degradation = summary["degradation"]
        assert degradation["state"] == "gpu-only"
        transitions = [(e["from"], e["to"]) for e in degradation["events"]]
        assert ("pim-degraded", "gpu-only") in transitions
        assert summary["degraded_reroutes"] > 0
        assert summary["unrecovered"] == 0

    def test_degradation_lands_in_the_manifest(self, boot, tmp_path):
        from repro.obs.export import run_manifest, write_json
        workload, params = boot
        plan = default_plan(seed=0, stuck_sites=(1, 5))
        framework = AnaheimFramework(
            A100_80GB, A100_NEAR_BANK, fault_plan=plan,
            health=HealthMonitor(degraded_after=1, gpu_only_after=2))
        result = framework.run(workload.blocks, params.degree,
                               label="Boot")
        manifest = run_manifest(result.report, gpu=A100_80GB,
                                pim=A100_NEAR_BANK,
                                options=result.options, workload="Boot",
                                degree=params.degree, fault_plan=plan)
        path = tmp_path / "manifest.json"
        write_json(path, manifest)
        loaded = json.loads(path.read_text())
        state = loaded["report"]["fault_summary"]["degradation"]
        assert state["state"] == "gpu-only"
        assert state["events"]

    def test_healthy_plan_stays_healthy(self, boot):
        workload, params = boot
        framework = AnaheimFramework(
            A100_80GB, A100_NEAR_BANK,
            fault_plan=default_plan(seed=0, scale=0.0),
            health=HealthMonitor())
        result = framework.run(workload.blocks, params.degree)
        assert result.report.fault_summary["degradation"]["state"] == \
            "healthy"


class TestServeResume:
    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        """The acceptance criterion, against real analytic units."""
        jobs = parse_jobs(["faults:analytic:Boot"])
        policy = ServePolicy(seeds=(0, 1), stuck_sites=(1, 5),
                             degraded_after=1, gpu_only_after=2)

        def runner(**kwargs):
            return JobRunner(jobs, policy, **kwargs)

        clean = runner().run()
        ckpt = tmp_path / "ck.json"
        killed = runner(checkpoint_path=ckpt, max_units=1).run()
        assert killed["interrupted"]
        resumed_runner = runner(checkpoint_path=ckpt, resume_path=ckpt)
        resumed = resumed_runner.run()

        assert json.dumps(clean, indent=2) == \
            json.dumps(resumed, indent=2)
        assert resumed_runner.resumed_units == 1
        assert clean["ok"]
        states = [u["result"]["summary"]["degradation"]["state"]
                  for u in clean["jobs"][0]["units"].values()]
        assert states == ["gpu-only", "gpu-only"]


class TestServeCli:
    def test_smoke_gates(self, capsys):
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "serve smoke: PASS" in out
        assert "byte-identical" in out

    def test_serve_jobs_table(self, capsys):
        assert main(["serve", "--jobs", "faults:analytic:Boot",
                     "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "0-faults" in out

    def test_serve_without_jobs_errors(self, capsys):
        assert main(["serve"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_serve_manifest_and_resume_flow(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ck.json")
        manifest = str(tmp_path / "serve.json")
        base = ["serve", "--jobs", "faults:analytic:Boot",
                "--seeds", "0,1"]
        assert main(base + ["--checkpoint", ckpt, "--max-units", "1"]) == 2
        assert main(base + ["--resume", ckpt, "--manifest", manifest,
                            "--json"]) == 0
        capsys.readouterr()
        doc = json.loads(open(manifest).read())
        assert doc["kind"] == "serve"
        assert not doc["interrupted"]
        assert doc["jobs"][0]["campaign"]["gate"]["passed"]

    def test_serve_resume_digest_mismatch_is_clean(self, tmp_path,
                                                   capsys):
        ckpt = str(tmp_path / "ck.json")
        assert main(["serve", "--jobs", "faults:analytic:Boot",
                     "--seeds", "0", "--checkpoint", ckpt]) == 0
        assert main(["serve", "--jobs", "faults:analytic:Sort",
                     "--seeds", "0", "--resume", ckpt]) == 1
        err = capsys.readouterr().err
        assert "digest mismatch" in err
        assert err.strip().count("\n") == 0
