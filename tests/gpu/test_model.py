"""Tests for the GPU roofline model, kernels, cache, and library profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import OpCategory
from repro.gpu import kernels as gk
from repro.gpu.cache import CacheModel
from repro.gpu.configs import (A100_80GB, CHEDDAR, HUNDRED_X, LIBRARIES,
                               PHANTOM, RTX_4090)
from repro.gpu.model import GpuModel

N = 2 ** 16
L = 54


class TestKernelBuilders:
    def test_ntt_counts(self):
        k = gk.ntt_kernel(L, N)
        assert k.mod_ops == L * (N // 2) * 16
        assert k.bytes_read == k.bytes_written == L * N * 4

    def test_bconv_counts(self):
        k = gk.bconv_kernel(14, 54, N)
        assert k.mod_ops == (14 * 54 + 14) * N
        assert k.bytes_read == 14 * N * 4
        assert k.bytes_written == 54 * N * 4

    def test_elementwise_streaming_split(self):
        k = gk.elementwise_kernel("mul", L, N, reads=2, writes=1,
                                  streaming_reads=1)
        assert k.streaming_bytes == L * N * 4
        assert k.total_bytes == 3 * L * N * 4

    def test_automorphism_is_pure_movement(self):
        k = gk.automorphism_kernel(L, N, polys=2)
        assert k.mod_ops == 0
        assert k.category == OpCategory.AUTOMORPHISM

    def test_writeback_kernel(self):
        k = gk.writeback_kernel(8, N)
        assert k.category == OpCategory.TRANSFER
        assert k.streaming_bytes == k.bytes_written


class TestRoofline:
    def test_elementwise_is_memory_bound(self):
        model = GpuModel(A100_80GB)
        k = gk.elementwise_kernel("add", L, N, reads=2, writes=1)
        cost = model.kernel_cost(k)
        assert cost.bound == "memory"

    def test_ntt_is_compute_bound_on_a100(self):
        # §V-A / Fig. 4a: quadrupled bandwidth barely improves ModSwitch.
        # The deployed path applies the cache model to the footprint.
        cache = CacheModel(l2_bytes=A100_80GB.l2_cache_bytes)
        kernel = gk.ntt_kernel(L, N)
        model = GpuModel(A100_80GB)
        cost = model.kernel_cost(kernel, dram_bytes=cache.dram_bytes(kernel))
        assert cost.compute_time > cost.memory_time

    def test_ntt_near_roofline_knee_on_4090(self):
        # The 4090 trades bandwidth for compute; its NTT sits near the
        # knee (neither side dominates by more than ~2x).
        cache = CacheModel(l2_bytes=RTX_4090.l2_cache_bytes)
        kernel = gk.ntt_kernel(L, N)
        model = GpuModel(RTX_4090)
        cost = model.kernel_cost(kernel, dram_bytes=cache.dram_bytes(kernel))
        ratio = cost.memory_time / cost.compute_time
        assert 0.5 < ratio < 2.0

    def test_elementwise_intensity_below_two(self):
        # §IV-D: element-wise ops show < 2 ops/byte.
        model = GpuModel(A100_80GB)
        k = gk.elementwise_kernel("mac", L, N, reads=3, writes=1,
                                  ops_per_element=1.0)
        assert model.arithmetic_intensity(k) < 2.0

    def test_ridge_points(self):
        # §IV-D: GPUs are best suited for 10-40+ ops/byte.
        assert 9 < A100_80GB.roofline_ridge < 14
        assert 40 < RTX_4090.roofline_ridge < 48

    def test_dram_bytes_override(self):
        model = GpuModel(A100_80GB)
        k = gk.elementwise_kernel("add", L, N, reads=2, writes=1)
        full = model.kernel_cost(k)
        halved = model.kernel_cost(k, dram_bytes=k.total_bytes / 2)
        assert halved.memory_time == pytest.approx(full.memory_time / 2)

    def test_launch_overhead_included(self):
        model = GpuModel(A100_80GB)
        k = gk.elementwise_kernel("tiny", 1, 64, reads=1, writes=1)
        cost = model.kernel_cost(k)
        assert cost.time >= A100_80GB.kernel_launch_overhead

    @given(st.integers(1, 60))
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_limbs(self, limbs):
        model = GpuModel(A100_80GB)
        t1 = model.kernel_cost(gk.ntt_kernel(limbs, N)).time
        t2 = model.kernel_cost(gk.ntt_kernel(limbs + 1, N)).time
        assert t2 > t1


class TestLibraryProfiles:
    def test_cheddar_fastest(self):
        k = gk.ntt_kernel(L, N)
        times = {name: GpuModel(A100_80GB, lib).kernel_cost(k).time
                 for name, lib in LIBRARIES.items()}
        assert times["Cheddar"] < times["100x"]
        assert times["Cheddar"] < times["Phantom"]

    def test_cheddar_ntt_ratio_matches_fig2a(self):
        # §IV-A: (I)NTT gets 1.73-1.81x faster with Cheddar.
        k = gk.ntt_kernel(L, N)
        cheddar = GpuModel(A100_80GB, CHEDDAR).kernel_cost(k).time
        hundredx = GpuModel(A100_80GB, HUNDRED_X).kernel_cost(k).time
        phantom = GpuModel(A100_80GB, PHANTOM).kernel_cost(k).time
        assert hundredx / cheddar == pytest.approx(1.74, rel=0.05)
        assert phantom / cheddar == pytest.approx(1.80, rel=0.05)

    def test_elementwise_library_insensitive(self):
        # Fig. 2a: HADD/PMULT are the same across libraries.
        k = gk.elementwise_kernel("add", L, N, reads=2, writes=1)
        cheddar = GpuModel(A100_80GB, CHEDDAR).kernel_cost(k).time
        phantom = GpuModel(A100_80GB, PHANTOM).kernel_cost(k).time
        assert phantom / cheddar < 1.1


class TestEnergy:
    def test_energy_positive_and_scales(self):
        model = GpuModel(A100_80GB)
        k1 = gk.ntt_kernel(10, N)
        k2 = gk.ntt_kernel(40, N)
        e1 = model.kernel_energy(k1, model.kernel_cost(k1))
        e2 = model.kernel_energy(k2, model.kernel_cost(k2))
        assert 0 < e1 < e2

    def test_memory_bound_kernel_pays_little_core_power(self):
        model = GpuModel(A100_80GB)
        k = gk.elementwise_kernel("add", L, N, reads=2, writes=1)
        cost = model.kernel_cost(k)
        energy = model.kernel_energy(k, cost)
        core_only = A100_80GB.core_dynamic_power * cost.compute_time
        assert core_only < 0.5 * energy


class TestCacheModel:
    def test_streaming_always_misses(self):
        cache = CacheModel(l2_bytes=40e6)
        k = gk.elementwise_kernel("evk", L, N, reads=2, writes=1,
                                  streaming_reads=2)
        assert cache.dram_bytes(k) >= k.streaming_bytes

    def test_hit_rate_decays_with_pressure(self):
        small = CacheModel(l2_bytes=40e6, working_set_bytes=40e6)
        big = CacheModel(l2_bytes=40e6, working_set_bytes=160e6)
        assert big.hit_rate(OpCategory.NTT) < small.hit_rate(OpCategory.NTT)

    def test_dram_bytes_bounded_by_footprint(self):
        cache = CacheModel(l2_bytes=40e6)
        k = gk.ntt_kernel(L, N)
        assert 0 < cache.dram_bytes(k) <= k.total_bytes
