"""Tests for workload trace builders: basic functions, transforms, boot."""

import pytest

from repro.core.fusion import GPU_ALL_FUSE, lower
from repro.core.trace import OpCategory
from repro.params import paper_params, params_for_dnum
from repro.workloads.basic_functions import (BASIC_FUNCTIONS, hmult_blocks,
                                             hrot_blocks)
from repro.workloads.bootstrap_trace import (bootstrap_blocks,
                                             factor_diagonals, t_boot_eff)
from repro.workloads.linear_transform_trace import (bsgs_split,
                                                    count_ntt_limbs,
                                                    transform_blocks)

P = paper_params()
N = P.degree
L, AUX, D = P.level_count, P.aux_count, P.dnum


class TestBasicFunctions:
    def test_all_four_build(self):
        for name, factory in BASIC_FUNCTIONS.items():
            blocks = factory(L, AUX, D)
            trace = lower(blocks, N, GPU_ALL_FUSE)
            assert len(trace) > 0

    def test_hmult_has_all_phases(self):
        trace = lower(hmult_blocks(L, AUX, D), N, GPU_ALL_FUSE)
        categories = {k.category for k in trace.gpu_kernels()}
        assert OpCategory.NTT in categories
        assert OpCategory.BCONV in categories
        assert OpCategory.ELEMENTWISE in categories

    def test_hrot_has_automorphism(self):
        trace = lower(hrot_blocks(L, AUX, D), N, GPU_ALL_FUSE)
        assert trace.count(OpCategory.AUTOMORPHISM) == 1

    def test_hadd_is_single_elementwise(self):
        trace = lower(BASIC_FUNCTIONS["HADD"](L, AUX, D), N, GPU_ALL_FUSE)
        assert len(trace) == 1
        assert trace.kernels[0].category == OpCategory.ELEMENTWISE


class TestLinearTransform:
    def test_bsgs_split(self):
        baby, giant = bsgs_split(63)
        assert baby * giant >= 63
        assert abs(baby - giant) <= 1

    def test_minks_uses_single_evk(self):
        _, base_stats = transform_blocks(L, AUX, D, 16, method="base")
        _, minks_stats = transform_blocks(L, AUX, D, 16, method="minks")
        assert minks_stats.evk_count == 2
        assert base_stats.evk_count > 1

    def test_minks_compute_equals_base(self):
        # §III-B: "MinKS does not alter the amount of computation".
        base_blocks, _ = transform_blocks(L, AUX, D, 16, method="base")
        minks_blocks, _ = transform_blocks(L, AUX, D, 16, method="minks")
        base_ops = lower(base_blocks, N, GPU_ALL_FUSE).total_mod_ops()
        minks_ops = lower(minks_blocks, N, GPU_ALL_FUSE).total_mod_ops()
        assert base_ops == pytest.approx(minks_ops)

    def test_hoisting_reduces_ntt_count(self):
        # Fig. 1 table: hoisting cuts the (I)NTT count substantially
        # (2.47x for the full CoeffToSlot).
        base_blocks, _ = transform_blocks(L, AUX, D, 63, method="base")
        hoist_blocks, _ = transform_blocks(L, AUX, D, 63, method="hoist")
        base_ntt = count_ntt_limbs(base_blocks, N)
        hoist_ntt = count_ntt_limbs(hoist_blocks, N)
        assert 1.5 < base_ntt / hoist_ntt < 4.0

    def test_hoisting_uses_larger_plaintexts(self):
        # Fig. 1 table: hoisting's plaintexts live in the extended
        # modulus PQ.
        _, base_stats = transform_blocks(L, AUX, D, 63, method="base")
        _, hoist_stats = transform_blocks(L, AUX, D, 63, method="hoist")
        assert hoist_stats.plaintext_limbs > base_stats.plaintext_limbs

    def test_reorder_removes_per_rotation_automorphism(self):
        # §V-B: reordering eliminates 2K extra reads and writes.
        reordered, _ = transform_blocks(L, AUX, D, 30, method="hoist",
                                        reorder=True)
        original, _ = transform_blocks(L, AUX, D, 30, method="hoist",
                                       reorder=False)
        t_reordered = lower(reordered, N, GPU_ALL_FUSE)
        t_original = lower(original, N, GPU_ALL_FUSE)
        aut_bytes = lambda t: sum(
            k.total_bytes for k in t.gpu_kernels()
            if k.category == OpCategory.AUTOMORPHISM)
        assert aut_bytes(t_original) > aut_bytes(t_reordered)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            transform_blocks(L, AUX, D, 8, method="alien")


class TestBootstrapTrace:
    def test_default_level_schedule(self):
        # "L changes as 2 -> 54 -> 24 during bootstrapping. L_eff = 11."
        _, meta = bootstrap_blocks(P)
        assert meta.level_out == 24
        assert meta.l_eff == 11

    def test_factor_diagonals_shrink_with_fft_iter(self):
        diags = [factor_diagonals(2 ** 15, f) for f in (3, 4, 5, 6)]
        assert diags == sorted(diags, reverse=True)

    def test_higher_fft_iter_lowers_l_eff(self):
        # Fig. 3: each fftIter increase drops L_eff.
        effs = []
        for fft in (3, 4, 5, 6):
            _, meta = bootstrap_blocks(P, fft_iter_cts=fft, fft_iter_stc=fft)
            effs.append(meta.l_eff)
        assert effs == sorted(effs, reverse=True)
        assert effs[0] > effs[-1]

    def test_evk_count_scale(self):
        _, meta = bootstrap_blocks(P)
        # Dozens of evks per linear transform collection (§II-C).
        assert 30 < meta.evk_count < 200

    def test_sparse_slots_reduce_work(self):
        full, _ = bootstrap_blocks(P)
        sparse, _ = bootstrap_blocks(P, slot_count=256)
        full_ops = lower(full, N, GPU_ALL_FUSE).total_mod_ops()
        sparse_ops = lower(sparse, N, GPU_ALL_FUSE).total_mod_ops()
        assert sparse_ops < full_ops

    def test_t_boot_eff(self):
        _, meta = bootstrap_blocks(P)
        assert t_boot_eff(0.033, meta) == pytest.approx(0.003)

    def test_dnum_sweep_feasible(self):
        for dnum in (2, 3, 4):
            params = params_for_dnum(dnum)
            _, meta = bootstrap_blocks(params)
            assert meta.l_eff >= 1
