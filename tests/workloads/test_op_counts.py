"""Tests for the closed-form op/byte counts (§IV-D arithmetic intensity)."""

import pytest

from repro.params import paper_params
from repro.workloads import op_counts as oc

P = paper_params()
N = P.degree
L, AUX, D = P.level_count, P.aux_count, P.dnum


class TestPrimitiveCounts:
    def test_ntt_count(self):
        count = oc.ntt_count(1, N)
        assert count.mod_ops == (N / 2) * 16
        assert count.bytes_touched == 2 * N * 4

    def test_bconv_count(self):
        count = oc.bconv_count(AUX, L, N)
        assert count.mod_ops == (AUX * L + AUX) * N
        assert count.bytes_touched == (AUX + L) * N * 4

    def test_elementwise_intensity_below_two(self):
        # §IV-D: "element-wise ops show less than 2 ops/byte".
        for operands, ops in ((3, 1.0), (4, 1.0), (14, 8.0)):
            count = oc.elementwise_count(L, N, operands, ops)
            assert count.ops_per_byte < 2.0

    def test_ntt_intensity_exceeds_elementwise(self):
        ntt = oc.ntt_count(L, N)
        ew = oc.elementwise_count(L, N, operands=3)
        assert ntt.ops_per_byte > 5 * ew.ops_per_byte

    def test_bconv_intensity_high(self):
        count = oc.bconv_count(AUX, L, N)
        assert count.ops_per_byte > 2.0

    def test_automorphism_is_pure_movement(self):
        count = oc.automorphism_count(L, N)
        assert count.mod_ops == 0
        assert count.ops_per_byte == 0.0


class TestCompositeCounts:
    def test_addition_and_scaling(self):
        a = oc.ntt_count(1, N)
        total = a + a
        assert total.mod_ops == 2 * a.mod_ops
        assert a.times(3).bytes_touched == 3 * a.bytes_touched

    def test_mod_up_structure(self):
        count = oc.mod_up_count(L, AUX, D, N)
        # At least the INTT(L) plus D NTT pipelines.
        assert count.mod_ops > oc.ntt_count(L, N).mod_ops * 2

    def test_hrot_vs_hmult(self):
        hrot = oc.hrot_count(L, AUX, D, N)
        hmult = oc.hmult_count(L, AUX, D, N)
        # HMULT adds the tensor stage; both share the key-switch core.
        assert hmult.mod_ops > hrot.mod_ops - oc.automorphism_count(
            L, N).mod_ops
        assert 0.5 < hmult.mod_ops / hrot.mod_ops < 2.0

    def test_keymult_is_memory_bound_shaped(self):
        count = oc.key_mult_count(L, AUX, D, N)
        assert count.ops_per_byte < 2.0

    def test_counts_match_trace_builders(self):
        """The closed forms agree with the lowered traces (same model)."""
        from repro.core.fusion import GPU_ALL_FUSE, lower
        from repro.workloads.basic_functions import hmult_blocks
        trace = lower(hmult_blocks(L, AUX, D, rescale=False), N,
                      GPU_ALL_FUSE)
        trace_ops = trace.total_mod_ops()
        closed = oc.hmult_count(L, AUX, D, N).mod_ops
        assert trace_ops == pytest.approx(closed, rel=0.2)
