"""Tests for the six evaluation workloads and the paper-shape bands."""

import pytest

from repro.core.framework import AnaheimFramework
from repro.gpu.configs import A100_80GB, RTX_4090
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads import applications as apps
from repro.workloads.metrics import edp_improvement, geomean, speedup

P = paper_params()


@pytest.fixture(scope="module")
def a100_results():
    """Baseline-vs-Anaheim reports for every workload (computed once)."""
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
    out = {}
    for name in apps.WORKLOADS:
        workload = apps.build(name, P)
        out[name] = (workload,
                     framework.compare(workload.blocks, P.degree))
    return out


class TestWorkloadConstruction:
    def test_all_six_build(self):
        assert set(apps.WORKLOADS) == {"Boot", "HELR", "Sort", "RNN",
                                       "ResNet20", "ResNet18-AESPA"}
        for name in apps.WORKLOADS:
            workload = apps.build(name, P)
            assert len(workload.blocks) > 0
            assert workload.l_eff >= 1

    def test_unknown_workload_rejected(self):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError, match="unknown workload"):
            apps.build("Minesweeper", P)

    def test_l_eff_values_match_paper(self):
        # §VII-A workload list.
        expected = {"Boot": 11, "HELR": 10, "Sort": 9, "RNN": 10,
                    "ResNet20": 8, "ResNet18-AESPA": 7}
        for name, l_eff in expected.items():
            assert apps.build(name, P).l_eff == l_eff


class TestMemoryPlans:
    def test_oom_flags_match_fig8(self):
        # Fig. 8: ResNet20 and ResNet18-AESPA hit OoM on RTX 4090;
        # everything else runs there.
        capacity = RTX_4090.dram_capacity
        oom = {name: not apps.build(name, P).memory.fits(capacity)
               for name in apps.WORKLOADS}
        assert oom["ResNet20"]
        assert oom["ResNet18-AESPA"]
        assert not oom["Boot"]
        assert not oom["HELR"]
        assert not oom["Sort"]
        assert not oom["RNN"]

    def test_everything_fits_a100(self):
        capacity = A100_80GB.dram_capacity
        for name in apps.WORKLOADS:
            assert apps.build(name, P).memory.fits(capacity)

    def test_resnet18_needs_over_40gb(self):
        # §VIII-B: "ResNet18-AESPA requires over 40GB of memory".
        workload = apps.build("ResNet18-AESPA", P)
        assert workload.memory.total_bytes > 40e9

    def test_memory_plan_describe(self):
        plan = apps.build("Boot", P).memory
        assert "GB" in plan.describe()


class TestPaperShapeBands:
    """The headline Fig. 8 claims, asserted as bands."""

    def test_speedups_in_paper_band(self, a100_results):
        # A100 near-bank speedups: 1.24-1.74x.
        for name, (_, res) in a100_results.items():
            s = speedup(res["gpu"].report.total_time,
                        res["pim"].report.total_time)
            assert 1.15 < s < 1.85, f"{name} speedup {s}"

    def test_edp_improvements_in_band(self, a100_results):
        # Fig. 8: 1.62-3.14x EDP gains (A100 near-bank subset thereof).
        gains = []
        for name, (_, res) in a100_results.items():
            gain = edp_improvement(res["gpu"].report, res["pim"].report)
            assert 1.4 < gain < 3.3, f"{name} EDP gain {gain}"
            gains.append(gain)
        assert 1.5 < geomean(gains) < 2.5

    def test_helr_gains_least(self, a100_results):
        # §VII-B: HELR's sparse bootstrapping is ModSwitch-dominated,
        # so it benefits least from PIM.
        gains = {name: edp_improvement(res["gpu"].report,
                                       res["pim"].report)
                 for name, (_, res) in a100_results.items()}
        assert gains["HELR"] == min(gains.values())

    def test_energy_always_improves(self, a100_results):
        for name, (_, res) in a100_results.items():
            assert res["pim"].report.energy < res["gpu"].report.energy

    def test_boot_latency_near_table_v(self, a100_results):
        # Table V: Anaheim (A100) Boot = 29.3 ms.
        _, res = a100_results["Boot"]
        anaheim_ms = res["pim"].report.total_time * 1e3
        assert 20 < anaheim_ms < 40

    def test_pim_reduces_gpu_dram_traffic(self, a100_results):
        # Fig. 4b: GPU-side DRAM access drops by several x.
        _, res = a100_results["Boot"]
        ratio = (res["gpu"].report.gpu_dram_bytes
                 / res["pim"].report.gpu_dram_bytes)
        assert ratio > 2.0


class TestHelrMechanism:
    """§VII-B: HELR bootstraps only 196 weights, so its bootstrapping is
    sparsely packed, linear transforms shrink, and ModSwitch dominates
    — the stated reason HELR gains least from Anaheim."""

    def test_sparse_boot_is_modswitch_dominated(self):
        from repro.core.framework import AnaheimFramework
        from repro.core.trace import OpCategory
        from repro.workloads.bootstrap_trace import bootstrap_blocks

        framework = AnaheimFramework(A100_80GB)
        full, _ = bootstrap_blocks(P)
        sparse, _ = bootstrap_blocks(P, slot_count=256)
        modswitch = lambda r: (r.category_share(OpCategory.NTT)
                               + r.category_share(OpCategory.BCONV))
        full_report = framework.run(full, P.degree).report
        sparse_report = framework.run(sparse, P.degree).report
        assert modswitch(sparse_report) > modswitch(full_report)
        ew = lambda r: r.category_share(OpCategory.ELEMENTWISE)
        assert ew(sparse_report) < ew(full_report)
