"""Tests for the BGV/BFV/TFHE extension traces (§VIII-C)."""

import pytest

from repro.core.framework import AnaheimFramework
from repro.core.fusion import GPU_ALL_FUSE, PIM_FULL, lower
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.other_schemes import (TfheParams, bfv_hmult_blocks,
                                           bgv_hmult_blocks,
                                           tfhe_gate_bootstrap_blocks)

P = paper_params()
L, AUX, D = P.level_count, P.aux_count, P.dnum


class TestBgvBfvTraces:
    def test_bgv_structure_matches_ckks_hmult(self):
        from repro.workloads.basic_functions import hmult_blocks
        bgv = lower(bgv_hmult_blocks(L, AUX, D), P.degree, GPU_ALL_FUSE)
        ckks = lower(hmult_blocks(L, AUX, D), P.degree, GPU_ALL_FUSE)
        # Same KeyMult core -> same element-wise kernel count.
        assert (bgv.count(OpCategory.ELEMENTWISE)
                == ckks.count(OpCategory.ELEMENTWISE))

    def test_bfv_has_more_ntt_work_than_bgv(self):
        bgv = lower(bgv_hmult_blocks(L, AUX, D), P.degree, GPU_ALL_FUSE)
        bfv = lower(bfv_hmult_blocks(L, AUX, D), P.degree, GPU_ALL_FUSE)
        ntt_ops = lambda t: sum(k.mod_ops for k in t.gpu_kernels()
                                if k.category == OpCategory.NTT)
        assert ntt_ops(bfv) > 1.5 * ntt_ops(bgv)

    @pytest.mark.parametrize("builder", [bgv_hmult_blocks,
                                         bfv_hmult_blocks])
    def test_keymult_offloads_to_pim(self, builder):
        trace = lower(builder(L, AUX, D), P.degree, PIM_FULL)
        instructions = {k.instruction for k in trace.pim_kernels()}
        assert "PAccum" in instructions

    def test_anaheim_speeds_up_bgv(self):
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        runs = framework.compare(bgv_hmult_blocks(L, AUX, D), P.degree)
        gpu = runs["gpu"].report
        pim = runs["pim"].report
        assert pim.total_time < gpu.total_time
        assert 1.0 < gpu.total_time / pim.total_time < 2.5

    def test_bfv_multiplication_is_near_breakeven(self):
        """A scheme-dependent finding: BFV's scale-invariant multiply is
        dominated by basis-extension (I)NTT/BConv compute, so a single
        multiplication gains little from PIM — consistent with the
        paper's caveat that "thorough analyses for these schemes must
        precede" (§VIII-C)."""
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        runs = framework.compare(bfv_hmult_blocks(L, AUX, D), P.degree)
        gpu = runs["gpu"].report
        pim = runs["pim"].report
        ratio = gpu.total_time / pim.total_time
        assert 0.9 < ratio < 1.3
        # The compute share explains it.
        modswitch = (gpu.category_share(OpCategory.NTT)
                     + gpu.category_share(OpCategory.BCONV))
        assert modswitch > 0.7


class TestTfheTrace:
    def test_gate_bootstrap_builds(self):
        params = TfheParams(lwe_dimension=16)   # shortened for the test
        trace = lower(tfhe_gate_bootstrap_blocks(params), params.degree,
                      GPU_ALL_FUSE)
        assert len(trace) == 16 * 6

    def test_ggsw_mac_offloads_as_paccum(self):
        params = TfheParams(lwe_dimension=8)
        trace = lower(tfhe_gate_bootstrap_blocks(params), params.degree,
                      PIM_FULL)
        paccum = [k for k in trace.pim_kernels()
                  if k.instruction == "PAccum"]
        assert len(paccum) == 8
        assert all(k.fan_in == params.decomposition for k in paccum)

    def test_pipelining_headroom_is_marginal_for_anaheim(self):
        """§V-C: once element-wise work shrinks, pipelining GPU and PIM
        kernels would buy little — checked on a real hybrid schedule."""
        from repro.workloads.bootstrap_trace import bootstrap_blocks
        blocks, _ = bootstrap_blocks(P)
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        report = framework.run(blocks, P.degree, PIM_FULL).report
        headroom = report.pipelining_headroom()
        assert 1.0 <= headroom < 1.35
