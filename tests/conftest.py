"""Shared fixtures: session-scoped CKKS contexts (key generation is the
expensive part, so every test module reuses the same seeded contexts)."""

import numpy as np
import pytest

from repro.ckks.evaluator import make_context
from repro.params import CkksParams, toy_params


@pytest.fixture(scope="session")
def small_params():
    """N=2^8, 5 levels — enough for one multiplication chain."""
    return toy_params(degree=2 ** 8, level_count=5, aux_count=2)


@pytest.fixture(scope="session")
def small_context(small_params):
    """Evaluator with relin, a few rotation keys, and conjugation."""
    return make_context(small_params, rotations=[1, 2, 3, 5, 8, 16],
                        include_conjugation=True)


@pytest.fixture(scope="session")
def deep_params():
    """N=2^7, 10 levels — for multiplication-chain and polyeval tests."""
    return CkksParams.create(degree=2 ** 7, level_count=10, aux_count=3)


@pytest.fixture(scope="session")
def deep_context(deep_params):
    return make_context(deep_params, rotations=[1], include_conjugation=True)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def random_message(rng, slots, magnitude=1.0):
    return magnitude * (rng.normal(size=slots) + 1j * rng.normal(size=slots))


@pytest.fixture()
def message(rng, small_params):
    return random_message(rng, small_params.slot_count)
