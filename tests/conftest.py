"""Shared fixtures: session-scoped CKKS contexts (key generation is the
expensive part, so every test module reuses the same seeded contexts).

Also a hang guard: with pytest-timeout installed (CI passes
``--timeout``), that plugin rules.  Without it, a SIGALRM-based
fallback kills any test that runs past ``FALLBACK_TIMEOUT_S`` — a
resilience suite full of deadline/retry/interrupt machinery must not
be able to hang the whole run when one of those loops regresses.
"""

import signal

import numpy as np
import pytest

from repro.ckks.evaluator import make_context
from repro.params import CkksParams, toy_params

FALLBACK_TIMEOUT_S = 300


def _timeout_plugin_active(config) -> bool:
    return config.pluginmanager.hasplugin("timeout") \
        and getattr(config.option, "timeout", None)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (not _timeout_plugin_active(item.config)
                 and hasattr(signal, "SIGALRM"))
    if use_alarm:
        marker = item.get_closest_marker("timeout")
        limit = int(marker.args[0]) if marker and marker.args \
            else FALLBACK_TIMEOUT_S

        def on_alarm(_signum, _frame):
            pytest.fail(f"test exceeded the {limit}s fallback timeout",
                        pytrace=False)

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(limit)
    try:
        yield
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test time limit (honored by "
        "pytest-timeout when installed, else by the SIGALRM fallback)")


@pytest.fixture(scope="session")
def small_params():
    """N=2^8, 5 levels — enough for one multiplication chain."""
    return toy_params(degree=2 ** 8, level_count=5, aux_count=2)


@pytest.fixture(scope="session")
def small_context(small_params):
    """Evaluator with relin, a few rotation keys, and conjugation."""
    return make_context(small_params, rotations=[1, 2, 3, 5, 8, 16],
                        include_conjugation=True)


@pytest.fixture(scope="session")
def deep_params():
    """N=2^7, 10 levels — for multiplication-chain and polyeval tests."""
    return CkksParams.create(degree=2 ** 7, level_count=10, aux_count=3)


@pytest.fixture(scope="session")
def deep_context(deep_params):
    return make_context(deep_params, rotations=[1], include_conjugation=True)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def random_message(rng, slots, magnitude=1.0):
    return magnitude * (rng.normal(size=slots) + 1j * rng.normal(size=slots))


@pytest.fixture()
def message(rng, small_params):
    return random_message(rng, small_params.slot_count)
