"""Functional PIM unit tests: real data through banks, MMACs, buffers.

Every Table II instruction executes against bank storage and is checked
against a numpy reference; DRAM command counts are checked against the
analytic model's expectations, including the column-partitioning
ACT/PRE advantage (Alg. 1, §VI-C).
"""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.dram.bank import Bank
from repro.dram.configs import HBM2_A100
from repro.errors import ParameterError
from repro.pim import isa
from repro.pim.layout import BankLayout
from repro.pim.mmac import MmacArray
from repro.pim.buffer import DataBuffer
from repro.pim.unit import PimUnit, load_poly, store_poly

Q = modmath.generate_primes(1, 64, bits=27)[0]
CHUNKS = 16
N_ELEMENTS = CHUNKS * 8


@pytest.fixture()
def rig():
    """(bank, layout, unit, rng) with a fresh bank per test."""
    bank = Bank(HBM2_A100, rows=64)
    layout = BankLayout(HBM2_A100, chunks_per_poly=CHUNKS, width=2)
    unit = PimUnit(bank, Q, buffer_entries=16)
    rng = np.random.default_rng(7)
    return bank, layout, unit, rng


def _polys(rng, count):
    return [rng.integers(0, Q, N_ELEMENTS, dtype=np.int64)
            for _ in range(count)]


def _store_group(bank, layout, values, naive=False):
    group = (layout.allocate_naive(len(values)) if naive
             else layout.allocate(len(values)))
    for placement, value in zip(group.placements, values):
        store_poly(bank, placement, value)
    return group


class TestMmac:
    def test_lane_ops(self):
        mmac = MmacArray(Q)
        rng = np.random.default_rng(0)
        a = rng.integers(0, Q, 8, dtype=np.int64)
        b = rng.integers(0, Q, 8, dtype=np.int64)
        c = rng.integers(0, Q, 8, dtype=np.int64)
        assert np.array_equal(mmac.mul(a, b), a * b % Q)
        assert np.array_equal(mmac.mac(a, b, c), (a * b + c) % Q)
        assert np.array_equal(mmac.add(a, b), (a + b) % Q)
        assert np.array_equal(mmac.sub(a, b), (a - b) % Q)
        assert np.array_equal(mmac.neg(a), (-a) % Q)

    def test_28_bit_truncation(self):
        mmac = MmacArray(Q)
        wide = np.full(8, (1 << 31) - 1, dtype=np.int64)  # 32-bit word
        narrow = wide & ((1 << 28) - 1)
        assert np.array_equal(mmac.passthrough(wide), narrow)

    def test_wide_modulus_rejected(self):
        with pytest.raises(ParameterError):
            MmacArray(1 << 29)


class TestDataBuffer:
    def test_capacity_and_peak(self):
        buf = DataBuffer(4)
        chunk = np.arange(8, dtype=np.int64)
        for i in range(4):
            buf.write(i, chunk)
        assert buf.peak_used == 4
        with pytest.raises(ParameterError):
            buf.write(4, chunk)

    def test_read_before_write_rejected(self):
        buf = DataBuffer(2)
        with pytest.raises(ParameterError):
            buf.read(0)

    def test_accumulate(self):
        buf = DataBuffer(2)
        buf.write(0, np.full(8, Q - 1, dtype=np.int64))
        buf.accumulate(0, np.full(8, 2, dtype=np.int64), Q)
        assert np.array_equal(buf.read(0), np.full(8, 1))


class TestUnaryBinaryInstructions:
    @pytest.mark.parametrize("name,nsrc,ref", [
        ("Move", 1, lambda s: s[0]),
        ("Neg", 1, lambda s: (-s[0]) % Q),
        ("Add", 2, lambda s: (s[0] + s[1]) % Q),
        ("Sub", 2, lambda s: (s[0] - s[1]) % Q),
        ("Mult", 2, lambda s: s[0] * s[1] % Q),
        ("MAC", 3, lambda s: (s[0] * s[1] + s[2]) % Q),
    ])
    def test_matches_numpy(self, rig, name, nsrc, ref):
        bank, layout, unit, rng = rig
        srcs = _polys(rng, nsrc)
        src_group = _store_group(bank, layout, srcs)
        dst_group = layout.allocate(1)
        unit.execute(name, dsts=dst_group.placements,
                     src_groups=[src_group.placements])
        got = load_poly(bank, dst_group[0])
        assert np.array_equal(got, ref(srcs))

    @pytest.mark.parametrize("name,ref", [
        ("CAdd", lambda a, c: (a + c) % Q),
        ("CSub", lambda a, c: (a - c) % Q),
        ("CMult", lambda a, c: c * a % Q),
    ])
    def test_constant_instructions(self, rig, name, ref):
        bank, layout, unit, rng = rig
        (a,) = _polys(rng, 1)
        const = 123457 % Q
        src_group = _store_group(bank, layout, [a])
        dst_group = layout.allocate(1)
        unit.execute(name, dsts=dst_group.placements,
                     src_groups=[src_group.placements], constants=[const])
        assert np.array_equal(load_poly(bank, dst_group[0]), ref(a, const))

    def test_cmac(self, rig):
        bank, layout, unit, rng = rig
        a, b = _polys(rng, 2)
        const = 98765 % Q
        src_group = _store_group(bank, layout, [a, b])
        dst_group = layout.allocate(1)
        unit.execute("CMAC", dsts=dst_group.placements,
                     src_groups=[src_group.placements], constants=[const])
        assert np.array_equal(load_poly(bank, dst_group[0]),
                              (const * a + b) % Q)

    def test_mod_down_ep(self, rig):
        bank, layout, unit, rng = rig
        a, b = _polys(rng, 2)
        inv_p = modmath.mod_inverse(12345, Q)
        src_group = _store_group(bank, layout, [a, b])
        dst_group = layout.allocate(1)
        unit.execute("ModDownEp", dsts=dst_group.placements,
                     src_groups=[src_group.placements], constants=[inv_p])
        assert np.array_equal(load_poly(bank, dst_group[0]),
                              inv_p * ((a - b) % Q) % Q)


class TestPairAndCompoundInstructions:
    def test_pmult(self, rig):
        bank, layout, unit, rng = rig
        p, a, b = _polys(rng, 3)
        pg = _store_group(bank, layout, [p])
        ab = _store_group(bank, layout, [a, b])
        dst = layout.allocate(2)
        unit.execute("PMult", dsts=dst.placements,
                     src_groups=[pg.placements, ab.placements])
        assert np.array_equal(load_poly(bank, dst[0]), a * p % Q)
        assert np.array_equal(load_poly(bank, dst[1]), b * p % Q)

    def test_pmac(self, rig):
        bank, layout, unit, rng = rig
        p, a, b, c, d = _polys(rng, 5)
        pg = _store_group(bank, layout, [p])
        abcd = _store_group(bank, layout, [a, b, c, d])
        dst = layout.allocate(2)
        unit.execute("PMAC", dsts=dst.placements,
                     src_groups=[pg.placements, abcd.placements])
        assert np.array_equal(load_poly(bank, dst[0]), (a * p + c) % Q)
        assert np.array_equal(load_poly(bank, dst[1]), (b * p + d) % Q)

    def test_tensor(self, rig):
        bank, layout, unit, rng = rig
        a, b, c, d = _polys(rng, 4)
        src = _store_group(bank, layout, [a, b, c, d])
        dst = layout.allocate(3)
        unit.execute("Tensor", dsts=dst.placements,
                     src_groups=[src.placements])
        assert np.array_equal(load_poly(bank, dst[0]), a * c % Q)
        assert np.array_equal(load_poly(bank, dst[1]),
                              (a * d + b * c) % Q)
        assert np.array_equal(load_poly(bank, dst[2]), b * d % Q)

    def test_tensor_sq(self, rig):
        bank, layout, unit, rng = rig
        a, b = _polys(rng, 2)
        src = _store_group(bank, layout, [a, b])
        dst = layout.allocate(3)
        unit.execute("TensorSq", dsts=dst.placements,
                     src_groups=[src.placements])
        assert np.array_equal(load_poly(bank, dst[0]), a * a % Q)
        assert np.array_equal(load_poly(bank, dst[1]), 2 * a * b % Q)
        assert np.array_equal(load_poly(bank, dst[2]), b * b % Q)

    def test_paccum4(self, rig):
        bank, layout, unit, rng = rig
        ps = _polys(rng, 4)
        abs_ = _polys(rng, 8)
        pg = _store_group(bank, layout, ps)
        ab = _store_group(bank, layout, abs_)
        dst = layout.allocate(2)
        unit.execute("PAccum", dsts=dst.placements,
                     src_groups=[pg.placements, ab.placements], fan_in=4)
        x_ref = sum(a * p % Q for a, p in zip(abs_[0::2], ps)) % Q
        y_ref = sum(b * p % Q for b, p in zip(abs_[1::2], ps)) % Q
        assert np.array_equal(load_poly(bank, dst[0]), x_ref)
        assert np.array_equal(load_poly(bank, dst[1]), y_ref)

    def test_caccum(self, rig):
        bank, layout, unit, rng = rig
        abs_ = _polys(rng, 6)
        consts = [11, 22, 33, 44]
        src = _store_group(bank, layout, abs_)
        dst = layout.allocate(2)
        unit.execute("CAccum", dsts=dst.placements,
                     src_groups=[src.placements], constants=consts, fan_in=3)
        x_ref = (consts[0] + sum(c * a for c, a in
                                 zip(consts[1:], abs_[0::2]))) % Q
        y_ref = (consts[0] + sum(c * b for c, b in
                                 zip(consts[1:], abs_[1::2]))) % Q
        assert np.array_equal(load_poly(bank, dst[0]), x_ref)
        assert np.array_equal(load_poly(bank, dst[1]), y_ref)


class TestCommandCounting:
    def test_paccum_activation_count_matches_alg1(self, rig):
        bank, layout, unit, rng = rig
        pg = _store_group(bank, layout, _polys(rng, 4))
        ab = _store_group(bank, layout, _polys(rng, 8))
        dst = layout.allocate(2)
        bank.stats.reset()
        unit.execute("PAccum", dsts=dst.placements,
                     src_groups=[pg.placements, ab.placements], fan_in=4)
        # G = floor(16/6) = 2 -> 8 iterations x 3 row groups = 24 ACTs.
        assert bank.stats.activates == 24
        # 14 polys x 16 chunks of column traffic.
        assert bank.stats.chunk_reads == 12 * CHUNKS
        assert bank.stats.chunk_writes == 2 * CHUNKS

    def test_naive_layout_needs_more_activations(self, rig):
        bank, layout, unit, rng = rig
        ps = _polys(rng, 4)
        abs_ = _polys(rng, 8)
        cp_acts = _run_paccum(HBM2_A100, ps, abs_, naive=False)
        naive_acts = _run_paccum(HBM2_A100, ps, abs_, naive=True)
        # §VI-C: naive contiguous allocation needs 4x/8x/2x more
        # ACT/PRE for the three phases (14 vs 3 per iteration).
        assert naive_acts > 3 * cp_acts

    def test_buffer_too_small_rejected(self, rig):
        bank, layout, _, rng = rig
        small_unit = PimUnit(bank, Q, buffer_entries=4)
        pg = _store_group(bank, layout, _polys(rng, 4))
        ab = _store_group(bank, layout, _polys(rng, 8))
        dst = layout.allocate(2)
        with pytest.raises(ParameterError):
            small_unit.execute("PAccum", dsts=dst.placements,
                               src_groups=[pg.placements, ab.placements],
                               fan_in=4)

    def test_wrong_source_shape_rejected(self, rig):
        bank, layout, unit, rng = rig
        src = _store_group(bank, layout, _polys(rng, 1))
        dst = layout.allocate(1)
        with pytest.raises(ParameterError):
            unit.execute("Add", dsts=dst.placements,
                         src_groups=[src.placements])


def _run_paccum(geometry, ps, abs_, naive):
    bank = Bank(geometry, rows=64)
    layout = BankLayout(geometry, chunks_per_poly=CHUNKS, width=2)
    unit = PimUnit(bank, Q, buffer_entries=16)
    pg = _store_group(bank, layout, ps, naive=naive)
    ab = _store_group(bank, layout, abs_, naive=naive)
    dst = layout.allocate_naive(2) if naive else layout.allocate(2)
    bank.stats.reset()
    unit.execute("PAccum", dsts=dst.placements,
                 src_groups=[pg.placements, ab.placements], fan_in=4)
    return bank.stats.activates
