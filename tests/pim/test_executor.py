"""Tests for the analytic PIM executor (Alg. 1 timing/energy model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import PimKernel
from repro.errors import ParameterError
from repro.pim.configs import (A100_CUSTOM_HBM, A100_NEAR_BANK, PIM_CONFIGS,
                               RTX4090_NEAR_BANK, with_buffer)
from repro.pim.executor import PimExecutor

N = 2 ** 16


def _kernel(instruction="Add", limbs=68, fan_in=1, cp=True):
    return PimKernel(name=instruction, instruction=instruction, limbs=limbs,
                     degree=N, fan_in=fan_in, column_partitioned=cp)


class TestConfigs:
    def test_bandwidth_multipliers_match_table_iii(self):
        # Table III: 16x / 4x / 8x (we land within ~10%).
        assert A100_NEAR_BANK.bandwidth_multiplier == pytest.approx(16, rel=0.15)
        assert A100_CUSTOM_HBM.bandwidth_multiplier == pytest.approx(4, rel=0.15)
        assert RTX4090_NEAR_BANK.bandwidth_multiplier == pytest.approx(8, rel=0.15)

    def test_mmac_throughput_matches_table_iii(self):
        assert A100_NEAR_BANK.mmac_tops_per_die == pytest.approx(0.194, rel=0.05)
        assert RTX4090_NEAR_BANK.mmac_tops_per_die == pytest.approx(0.168, rel=0.05)

    def test_buffer_sizes(self):
        assert A100_NEAR_BANK.buffer_entries == 16
        assert A100_CUSTOM_HBM.buffer_entries == 16
        assert RTX4090_NEAR_BANK.buffer_entries == 32

    def test_area_under_ten_percent(self):
        # §VII-A: PIM area overhead within 10% of the DRAM dies.
        for config in PIM_CONFIGS.values():
            assert config.area_fraction < 0.10


class TestSupport:
    def test_small_buffer_rejects_compound(self):
        ex = PimExecutor(with_buffer(A100_NEAR_BANK, 4))
        assert not ex.supports("PAccum", 4)
        assert not ex.supports("Tensor")
        assert ex.supports("Add")
        with pytest.raises(ParameterError):
            ex.cost(_kernel("PAccum", fan_in=4))

    def test_default_buffers_support_everything(self):
        for config in PIM_CONFIGS.values():
            ex = PimExecutor(config)
            assert ex.supports("PAccum", 4)
            assert ex.supports("Tensor")

    def test_chunk_granularity_alg1(self):
        ex = PimExecutor(A100_NEAR_BANK)
        assert ex.chunk_granularity("PAccum", 4) == 16 // 6


class TestCostModel:
    def test_time_scales_with_limbs(self):
        ex = PimExecutor(A100_NEAR_BANK)
        t5 = ex.cost(_kernel(limbs=5)).time
        t50 = ex.cost(_kernel(limbs=50)).time
        assert t50 > t5 * 5  # ceil(limbs/die_groups) rounds

    def test_column_partitioning_is_faster(self):
        ex = PimExecutor(A100_NEAR_BANK)
        for name, fan_in in (("PAccum", 4), ("PMAC", 1), ("Add", 1)):
            cp = ex.cost(_kernel(name, fan_in=fan_in, cp=True))
            naive = ex.cost(_kernel(name, fan_in=fan_in, cp=False))
            assert naive.time > cp.time
            assert naive.activations > cp.activations

    def test_paccum_no_cp_slowdown_band(self):
        # Fig. 10: w/o CP, element-wise times are ~2.2x slower overall;
        # for PAccum the per-instruction gap is larger.
        ex = PimExecutor(A100_NEAR_BANK)
        cp = ex.cost(_kernel("PAccum", fan_in=4, cp=True)).time
        naive = ex.cost(_kernel("PAccum", fan_in=4, cp=False)).time
        assert 1.5 < naive / cp < 6.0

    def test_larger_buffer_reduces_time_until_saturation(self):
        # Fig. 9: performance improves with B then saturates.
        times = []
        for b in (8, 16, 32, 64):
            ex = PimExecutor(with_buffer(A100_NEAR_BANK, b))
            times.append(ex.cost(_kernel("PAccum", fan_in=4)).time)
        assert times == sorted(times, reverse=True)
        gain_early = times[0] / times[1]
        gain_late = times[2] / times[3]
        assert gain_early > gain_late    # diminishing returns

    def test_custom_hbm_lower_act_share(self):
        # §VII-B: custom-HBM hides ACT/PRE better (one unit streams 8
        # banks per activation pair) — its ACT-time share is smaller.
        near = PimExecutor(A100_NEAR_BANK)
        custom = PimExecutor(A100_CUSTOM_HBM)
        k = _kernel("Add")
        near_cost = near.cost(k)
        custom_cost = custom.cost(k)
        # Same activation count, but custom streams 8x the data per act.
        assert custom_cost.activations == near_cost.activations
        assert custom_cost.time > near_cost.time   # 4x vs 16x bandwidth

    def test_energy_components_positive(self):
        ex = PimExecutor(A100_NEAR_BANK)
        cost = ex.cost(_kernel("Mult"))
        assert cost.energy > 0
        assert cost.internal_bytes == 3 * 68 * N * 4

    def test_trace_cost_additive(self):
        ex = PimExecutor(A100_NEAR_BANK)
        kernels = [_kernel("Add"), _kernel("Mult")]
        total = ex.trace_cost(kernels)
        parts = [ex.cost(k) for k in kernels]
        assert total.time == pytest.approx(sum(p.time for p in parts))
        assert total.energy == pytest.approx(sum(p.energy for p in parts))

    @given(st.integers(1, 68), st.sampled_from(["Add", "Mult", "MAC",
                                                "PMult", "ModDownEp"]))
    @settings(max_examples=40, deadline=None)
    def test_cost_properties(self, limbs, instruction):
        """Time, energy, and traffic are positive and monotone in limbs."""
        ex = PimExecutor(A100_NEAR_BANK)
        small = ex.cost(_kernel(instruction, limbs=limbs))
        bigger = ex.cost(_kernel(instruction, limbs=limbs + 5))
        assert small.time > 0
        assert small.energy > 0
        assert bigger.time >= small.time
        assert bigger.internal_bytes > small.internal_bytes
