"""Integration: real CKKS polynomials through the functional PIM device.

Full §VI-B mapping: RNS limbs distributed over die groups, coefficients
over banks; Table II instructions executed all-bank and compared against
the CKKS layer's own arithmetic — including an actual KeyMult evaluated
with PAccum⟨D⟩, the paper's flagship offload (Alg. 1).
"""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.ckks.keyswitch import key_mult
from repro.ckks.keys import EvaluationKey
from repro.ckks.rns import RnsPolynomial
from repro.dram.geometry import DramGeometry
from repro.errors import LayoutError, ParameterError
from repro.pim.device import PimDevice

#: A small but multi-group, multi-bank geometry for functional tests.
GEOMETRY = DramGeometry(name="test", die_groups=2, dies_per_group=1,
                        banks_per_die=4, rows_per_bank=256)
DEGREE = 256                     # 64 elements = 8 chunks per bank
BASIS = tuple(modmath.generate_primes(5, DEGREE, bits=27))


@pytest.fixture()
def device():
    return PimDevice(GEOMETRY, DEGREE, BASIS, buffer_entries=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(3)


def _random_poly(rng):
    return RnsPolynomial.random_uniform(DEGREE, BASIS, rng, is_ntt=True)


class TestMapping:
    def test_limb_to_group_round(self, device):
        assert device.limb_group(0) == 0
        assert device.limb_group(1) == 1
        assert device.limb_group(2) == 0
        assert device.limb_round(2) == 1
        assert device.limb_rounds == 3        # ceil(5 limbs / 2 groups)

    def test_store_load_roundtrip(self, device, rng):
        handle = device.allocate("x", slots=2)
        poly = _random_poly(rng)
        device.store(handle, 0, poly)
        back = device.load(handle, 0)
        assert np.array_equal(back.coeffs, poly.coeffs)
        assert back.basis == BASIS

    def test_wrong_basis_rejected(self, device, rng):
        handle = device.allocate("x", slots=1)
        other = RnsPolynomial.random_uniform(DEGREE, BASIS[:3], rng)
        with pytest.raises(ParameterError):
            device.store(handle, 0, other)

    def test_slot_bounds(self, device, rng):
        handle = device.allocate("x", slots=1)
        with pytest.raises(LayoutError):
            device.store(handle, 1, _random_poly(rng))


class TestElementwiseOnDevice:
    def test_add(self, device, rng):
        a, b = _random_poly(rng), _random_poly(rng)
        src = device.allocate("src", slots=2)
        dst = device.allocate("dst", slots=1)
        device.store(src, 0, a)
        device.store(src, 1, b)
        device.execute("Add", dsts=[(dst, 0)],
                       src_groups=[[(src, 0), (src, 1)]])
        got = device.load(dst, 0)
        assert np.array_equal(got.coeffs, (a + b).coeffs)

    def test_mult_matches_ntt_domain_product(self, device, rng):
        a, b = _random_poly(rng), _random_poly(rng)
        src = device.allocate("src", slots=2)
        dst = device.allocate("dst", slots=1)
        device.store(src, 0, a)
        device.store(src, 1, b)
        device.execute("Mult", dsts=[(dst, 0)],
                       src_groups=[[(src, 0), (src, 1)]])
        got = device.load(dst, 0)
        assert np.array_equal(got.coeffs, (a * b).coeffs)

    def test_per_limb_constants(self, device, rng):
        a = _random_poly(rng)
        src = device.allocate("src", slots=1)
        dst = device.allocate("dst", slots=1)
        device.store(src, 0, a)
        constants = [rng.integers(1, q) for q in BASIS]
        device.execute("CMult", dsts=[(dst, 0)],
                       src_groups=[[(src, 0)]], constants=constants)
        got = device.load(dst, 0)
        expect = a.scalar_mul([int(c) for c in constants])
        assert np.array_equal(got.coeffs, expect.coeffs)

    def test_mod_down_ep(self, device, rng):
        a, b = _random_poly(rng), _random_poly(rng)
        src = device.allocate("src", slots=2)
        dst = device.allocate("dst", slots=1)
        device.store(src, 0, a)
        device.store(src, 1, b)
        constants = [modmath.mod_inverse(7, q) for q in BASIS]
        device.execute("ModDownEp", dsts=[(dst, 0)],
                       src_groups=[[(src, 0), (src, 1)]],
                       constants=constants)
        got = device.load(dst, 0)
        expect = (a - b).scalar_mul(constants)
        assert np.array_equal(got.coeffs, expect.coeffs)


class TestKeyMultOnDevice:
    """The flagship offload: KeyMult as PAccum⟨D⟩ (Alg. 1)."""

    def test_paccum_matches_ckks_key_mult(self, device, rng):
        dnum = 3
        digits = [_random_poly(rng) for _ in range(dnum)]
        evk = EvaluationKey(
            b_polys=[_random_poly(rng) for _ in range(dnum)],
            a_polys=[_random_poly(rng) for _ in range(dnum)])
        expect_b, expect_a = key_mult(digits, evk)

        # PolyGroup0: evk halves interleaved (the "plaintexts" of
        # PAccum); PolyGroup1: digit pairs (a_i = b_i = digit_i ... the
        # ISA computes x = sum a_i*p_i, y = sum b_i*p_i).
        pg0 = device.allocate("evk_b", slots=dnum)
        pg1 = device.allocate("inputs", slots=2 * dnum)
        out = device.allocate("acc", slots=2)
        # x accumulates digit_i * evk_b_i, y accumulates digit_i * evk_a_i:
        # feed p_i = digit_i, a_i = evk.b_i, b_i = evk.a_i.
        for i in range(dnum):
            device.store(pg0, i, digits[i])
            device.store(pg1, 2 * i, evk.b_polys[i])
            device.store(pg1, 2 * i + 1, evk.a_polys[i])
        device.execute(
            "PAccum", dsts=[(out, 0), (out, 1)],
            src_groups=[[(pg0, i) for i in range(dnum)],
                        [(pg1, i) for i in range(2 * dnum)]],
            fan_in=dnum)
        got_b = device.load(out, 0)
        got_a = device.load(out, 1)
        assert np.array_equal(got_b.coeffs, expect_b.coeffs)
        assert np.array_equal(got_a.coeffs, expect_a.coeffs)

    def test_column_partitioning_saves_activations_device_wide(self, rng):
        # PAccum<4> at B=16 gives G=2, matching the column-group width
        # (Fig. 7: the runtime partitions rows so G chunks of each poly
        # share a row) — the regime where CP's ACT/PRE savings apply.
        def run(naive):
            device = PimDevice(GEOMETRY, DEGREE, BASIS, buffer_entries=16)
            pg0 = device.allocate("p", slots=4, naive=naive)
            pg1 = device.allocate("ab", slots=8, naive=naive)
            out = device.allocate("xy", slots=2, naive=naive)
            for i in range(4):
                device.store(pg0, i, _random_poly(rng))
            for i in range(8):
                device.store(pg1, i, _random_poly(rng))
            device.device.reset_stats()
            device.execute(
                "PAccum", dsts=[(out, 0), (out, 1)],
                src_groups=[[(pg0, i) for i in range(4)],
                            [(pg1, i) for i in range(8)]],
                fan_in=4)
            return device.device.aggregate_stats()

        cp = run(naive=False)
        naive = run(naive=True)
        assert naive.activates > 2 * cp.activates
        assert naive.chunk_reads == cp.chunk_reads   # same data volume
