"""Tests for the PIM instruction set descriptors (Table II)."""

import pytest

from repro.errors import ParameterError
from repro.pim import isa


class TestInstructionTable:
    def test_all_table_ii_instructions_present(self):
        expected = {"Move", "Neg", "Add", "Sub", "Mult", "MAC", "PMult",
                    "PMAC", "CAdd", "CSub", "CMult", "CMAC", "Tensor",
                    "TensorSq", "ModDownEp", "PAccum", "CAccum"}
        assert expected <= set(isa.INSTRUCTIONS)

    def test_unknown_instruction_rejected(self):
        with pytest.raises(ParameterError):
            isa.instruction("Frobnicate")


class TestPAccum:
    def test_alg1_chunk_granularity(self):
        # Alg. 1: G = floor(B/6) for PAccum<4> (4 plaintexts + x + y).
        inst = isa.instruction("PAccum")
        assert inst.buffer_polys(4) == 6

    def test_poly_counts(self):
        inst = isa.instruction("PAccum")
        assert inst.scaled_reads(4) == (4, 8)   # p_k, then (a_k, b_k)
        assert inst.total_polys(4) == 14
        assert inst.writes == 2

    def test_row_groups_vs_naive(self):
        # §VI-C: naive layout costs 4x/8x/2x more ACT for the three
        # phases — 14 activations vs 3 per iteration.
        inst = isa.instruction("PAccum")
        assert inst.row_groups(4) == 3
        assert inst.naive_row_groups(4) == 14

    def test_unsupported_at_small_buffer(self):
        # Fig. 9: "some compound PIM instructions (e.g., Tensor and
        # PAccum<4>) are not supported when using a small B".
        assert isa.instruction("PAccum").min_buffer(4) > 4
        assert isa.instruction("Tensor").min_buffer() > 4
        assert isa.instruction("CAccum").min_buffer(4) <= 4


class TestBasicInstructions:
    def test_move_is_pure_copy(self):
        inst = isa.instruction("Move")
        assert inst.ops_per_element == 0.0
        assert inst.total_polys() == 2

    def test_add_colocates_operands(self):
        inst = isa.instruction("Add")
        assert inst.reads_by_group == (2,)
        assert inst.row_groups() == 2          # one src group + dst
        assert inst.naive_row_groups() == 3

    def test_pmac_shape(self):
        inst = isa.instruction("PMAC")
        assert inst.total_polys() == 7          # p + a,b,c,d + x,y
        assert inst.writes == 2

    def test_tensor_shape(self):
        inst = isa.instruction("Tensor")
        assert inst.total_polys() == 7          # a,b,c,d + x,y,z
        assert inst.writes == 3
        assert inst.ops_per_element == 2.0

    def test_compound_scaling(self):
        caccum = isa.instruction("CAccum")
        assert caccum.read_polys(8) == 16
        assert caccum.total_polys(8) == 18

    def test_non_compound_ignores_fan_in(self):
        add = isa.instruction("Add")
        assert add.total_polys(4) == add.total_polys(1)
