"""Tests for the §VI-D extension configs: DDR5, LPDDR5X, GP-PIM."""

import pytest

from repro.core.trace import PimKernel
from repro.pim.configs import A100_NEAR_BANK
from repro.pim.executor import PimExecutor
from repro.pim.other_memories import (DDR5_NEAR_BANK, LPDDR5_NEAR_BANK,
                                      OTHER_MEMORY_CONFIGS,
                                      general_purpose_pim)

N = 2 ** 16


def _kernel(limbs=54):
    return PimKernel(name="Add", instruction="Add", limbs=limbs, degree=N)


class TestOtherMemoryConfigs:
    def test_geometries_divide_paper_degree(self):
        for config in OTHER_MEMORY_CONFIGS.values():
            assert config.geometry.chunks_per_bank(N) >= 1

    def test_ddr5_has_largest_bandwidth_multiplier(self):
        # Narrow external channels, many banks: the internal/external
        # ratio exceeds even the A100's 16x.
        assert (DDR5_NEAR_BANK.bandwidth_multiplier
                > A100_NEAR_BANK.bandwidth_multiplier)

    def test_lpddr_low_power_profile(self):
        assert (LPDDR5_NEAR_BANK.access_pj_per_bit()
                < A100_NEAR_BANK.access_pj_per_bit())

    def test_all_run_the_full_isa(self):
        for config in OTHER_MEMORY_CONFIGS.values():
            executor = PimExecutor(config)
            assert executor.supports("PAccum", 4)
            cost = executor.cost(_kernel())
            assert cost.time > 0
            assert cost.energy > 0

    def test_absolute_speedup_ordering(self):
        """More internal bandwidth headroom -> bigger gain over its own
        external channel, even if absolute PIM time is slower."""
        ddr5 = PimExecutor(DDR5_NEAR_BANK)
        a100 = PimExecutor(A100_NEAR_BANK)
        kernel = _kernel()
        ddr5_cost = ddr5.cost(kernel)
        a100_cost = a100.cost(kernel)
        # A100's PIM is absolutely faster (more banks, faster clock)...
        assert a100_cost.time < ddr5_cost.time
        # ...but DDR5's external baseline is far slower, so its
        # *relative* gain (external transfer time / PIM time) is larger.
        volume = 3 * 54 * N * 4
        ddr5_gain = (volume / DDR5_NEAR_BANK.external_bandwidth
                     ) / ddr5_cost.time
        a100_gain = (volume / A100_NEAR_BANK.external_bandwidth
                     ) / a100_cost.time
        assert ddr5_gain > a100_gain


class TestGeneralPurposePim:
    def test_slower_than_specialized(self):
        gp = general_purpose_pim(A100_NEAR_BANK, efficiency=0.25)
        specialized = PimExecutor(A100_NEAR_BANK)
        general = PimExecutor(gp)
        kernel = _kernel()
        ratio = general.cost(kernel).time / specialized.cost(kernel).time
        assert 2.0 < ratio < 5.0

    def test_data_layout_benefit_still_applies(self):
        """§VI-D: the column-partitioning contribution transfers to
        general-purpose PIM devices."""
        gp = PimExecutor(general_purpose_pim(A100_NEAR_BANK))
        kernel_cp = PimKernel(name="PAccum", instruction="PAccum",
                              limbs=54, degree=N, fan_in=4)
        kernel_naive = PimKernel(name="PAccum", instruction="PAccum",
                                 limbs=54, degree=N, fan_in=4,
                                 column_partitioned=False)
        assert gp.cost(kernel_naive).time > gp.cost(kernel_cp).time
