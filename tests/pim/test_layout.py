"""Tests for the column-partitioning layout (§VI-B, Fig. 7)."""

import pytest

from repro.dram.configs import HBM2_A100
from repro.errors import LayoutError
from repro.pim.layout import BankLayout, PolyPlacement


class TestPolyPlacement:
    def test_wrapped_addressing(self):
        # Width-2 column group starting at chunk column 4.
        p = PolyPlacement(base_row=3, rows=8, col_offset=4, width=2,
                          chunks=16)
        assert p.location(0) == (3, 4)
        assert p.location(1) == (3, 5)
        assert p.location(2) == (4, 4)      # wraps into the next row
        assert p.location(15) == (10, 5)

    def test_out_of_range_chunk(self):
        p = PolyPlacement(base_row=0, rows=1, col_offset=0, width=16,
                          chunks=16)
        with pytest.raises(LayoutError):
            p.location(16)

    def test_rows_for_window(self):
        p = PolyPlacement(base_row=2, rows=8, col_offset=0, width=2,
                          chunks=16)
        assert p.rows_for_window(0, 2) == [2]
        assert p.rows_for_window(0, 4) == [2, 3]
        assert p.rows_for_window(14, 16) == [9]


class TestBankLayout:
    def test_fig7_example(self):
        # 16 chunks per limb per bank, width 2 -> 16 column groups of
        # 8 rows each (Fig. 7's 16-CG case).
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=2)
        assert layout.slots_per_row == 16
        assert layout.rows_per_group == 8

    def test_polygroup_shares_rows(self):
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=2)
        group = layout.allocate(4)
        rows = {p.base_row for p in group.placements}
        assert len(rows) == 1
        offsets = [p.col_offset for p in group.placements]
        assert offsets == [0, 2, 4, 6]

    def test_naive_layout_separates_rows(self):
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=2)
        group = layout.allocate_naive(4)
        rows = {p.base_row for p in group.placements}
        assert len(rows) == 4

    def test_groups_do_not_overlap(self):
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=2)
        g1 = layout.allocate(2)
        g2 = layout.allocate(2)
        assert g1[0].base_row != g2[0].base_row

    def test_too_many_polys_rejected(self):
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=8)
        with pytest.raises(LayoutError):
            layout.allocate(5)   # 32/8 = 4 column groups max

    def test_rows_exhausted(self):
        layout = BankLayout(HBM2_A100, chunks_per_poly=16, width=2,
                            total_rows=8)
        layout.allocate(1)
        with pytest.raises(LayoutError):
            layout.allocate(1)

    def test_bad_width_rejected(self):
        with pytest.raises(LayoutError):
            BankLayout(HBM2_A100, chunks_per_poly=16, width=64)
