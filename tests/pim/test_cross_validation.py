"""Cross-validation: functional PIM execution vs the analytic model.

The analytic executor (used by every benchmark) predicts DRAM command
counts from the ISA descriptors; the functional unit actually issues
them against simulated banks.  For matching geometry, buffer size, and
layout, the two must agree — for every instruction.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import modmath
from repro.dram.bank import Bank
from repro.dram.geometry import DramGeometry
from repro.pim import isa
from repro.pim.layout import BankLayout
from repro.pim.unit import PimUnit, store_poly

#: Single-bank geometry mirroring the Fig. 7 example: 16 chunks per
#: poly slice, 32-chunk rows.
GEOMETRY = DramGeometry(name="xcheck", die_groups=1, dies_per_group=1,
                        banks_per_die=1)
Q = modmath.generate_primes(1, 64, bits=27)[0]
CHUNKS = 16

#: Instructions with functional handlers and a fan-in choice.
CASES = [("Move", 1), ("Neg", 1), ("Add", 1), ("Sub", 1), ("Mult", 1),
         ("MAC", 1), ("PMult", 1), ("PMAC", 1), ("CAdd", 1), ("CMult", 1),
         ("CMAC", 1), ("Tensor", 1), ("TensorSq", 1), ("ModDownEp", 1),
         ("PAccum", 2), ("PAccum", 4), ("CAccum", 2), ("CAccum", 4)]


def _run_functional(name, fan_in, buffer_entries):
    inst = isa.instruction(name)
    bank = Bank(GEOMETRY, rows=128)
    # Column-group width = chunk granularity G, the Fig. 7 discipline —
    # capped so the widest PolyGroup still fits in one row (the same
    # bound the analytic executor applies).
    g = buffer_entries // inst.buffer_polys(fan_in)
    row_cap = GEOMETRY.chunks_per_row // inst.widest_group(fan_in)
    g = max(1, min(g, row_cap))
    width = g
    layout = BankLayout(GEOMETRY, chunks_per_poly=CHUNKS, width=width,
                        total_rows=128)
    unit = PimUnit(bank, Q, buffer_entries)
    rng = np.random.default_rng(0)

    groups = []
    for count in inst.scaled_reads(fan_in):
        group = layout.allocate(count)
        for placement in group.placements:
            store_poly(bank, placement,
                       rng.integers(0, Q, CHUNKS * 8, dtype=np.int64))
        groups.append(group.placements)
    dst = layout.allocate(inst.writes)
    consts = [3, 5, 7, 11, 13][:max(1, fan_in + 1)]
    bank.stats.reset()
    unit.execute(name, dsts=dst.placements, src_groups=groups,
                 constants=consts, fan_in=fan_in)
    return bank.stats, g


class TestCommandCountsMatchAnalyticModel:
    @pytest.mark.parametrize("name,fan_in", CASES)
    def test_chunk_traffic(self, name, fan_in):
        """Column accesses = total_polys x chunks, exactly as the
        analytic executor charges."""
        inst = isa.instruction(name)
        stats, _ = _run_functional(name, fan_in, buffer_entries=16)
        assert stats.chunk_reads == inst.read_polys(fan_in) * CHUNKS
        assert stats.chunk_writes == inst.writes * CHUNKS

    @pytest.mark.parametrize("name,fan_in", CASES)
    def test_activation_count(self, name, fan_in):
        """ACTs = iterations x row-group phases (the Alg. 1 loop),
        when the CG width matches the chunk granularity G."""
        inst = isa.instruction(name)
        stats, g = _run_functional(name, fan_in, buffer_entries=16)
        if g < 1:
            pytest.skip("unsupported at B=16")
        iterations = math.ceil(CHUNKS / g)
        expected = iterations * inst.row_groups(fan_in)
        assert stats.activates == expected

    @given(st.sampled_from(CASES), st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=30, deadline=None)
    def test_traffic_invariant_under_buffer_size(self, case, buffer):
        """Data volume is layout/buffer independent; only ACTs change."""
        name, fan_in = case
        inst = isa.instruction(name)
        if buffer < inst.min_buffer(fan_in):
            return
        stats, _ = _run_functional(name, fan_in, buffer)
        assert stats.chunk_reads == inst.read_polys(fan_in) * CHUNKS
        assert stats.chunk_writes == inst.writes * CHUNKS

    @pytest.mark.parametrize("name,fan_in", [("PAccum", 4), ("PMAC", 1),
                                             ("MAC", 1)])
    def test_larger_buffer_never_increases_activations(self, name, fan_in):
        inst = isa.instruction(name)
        counts = []
        for buffer in (8, 16, 32, 64):
            if buffer < inst.min_buffer(fan_in):
                continue
            stats, _ = _run_functional(name, fan_in, buffer)
            counts.append(stats.activates)
        assert counts == sorted(counts, reverse=True)
