"""Fault injection inside the functional PIM unit.

The injector hooks sit where the microarchitecture says they should:
data-buffer writes, MMAC output delivery, and bank reads crossing a
stuck (bank, PolyGroup) region.  A fault-free injector leaves the unit
bit-identical to the reference path.
"""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.dram.bank import Bank
from repro.dram.configs import HBM2_A100
from repro.faults.inject import FaultInjector
from repro.faults.plan import (FaultModel, FaultPlan, FaultSpec,
                               default_plan)
from repro.pim.buffer import DataBuffer
from repro.pim.layout import BankLayout
from repro.pim.mmac import MmacArray
from repro.pim.unit import PimUnit, load_poly, store_poly

Q = modmath.generate_primes(1, 64, bits=27)[0]
CHUNKS = 16
N_ELEMENTS = CHUNKS * 8


def _rig(injector=None, site=0):
    bank = Bank(HBM2_A100, rows=64)
    layout = BankLayout(HBM2_A100, chunks_per_poly=CHUNKS, width=2)
    unit = PimUnit(bank, Q, buffer_entries=16, injector=injector, site=site)
    return bank, layout, unit


def _add_on_unit(bank, layout, unit, rng):
    a, b = (rng.integers(0, Q, N_ELEMENTS, dtype=np.int64)
            for _ in range(2))
    src = layout.allocate(2)
    for placement, value in zip(src.placements, (a, b)):
        store_poly(bank, placement, value)
    dst = layout.allocate(1)
    unit.execute("Add", dsts=dst.placements,
                 src_groups=[src.placements])
    return load_poly(bank, dst[0]), (a + b) % Q


def _always(model):
    return FaultInjector(FaultPlan(seed=3, specs=(
        FaultSpec(model, rate=1.0),)))


class TestNullInjector:
    def test_no_injector_matches_reference(self):
        got, want = _add_on_unit(*_rig(), np.random.default_rng(0))
        assert np.array_equal(got, want)

    def test_zero_rate_injector_matches_reference(self):
        injector = FaultInjector(FaultPlan(seed=1))
        got, want = _add_on_unit(*_rig(injector), np.random.default_rng(0))
        assert np.array_equal(got, want)
        assert not injector.log.events


class TestTransientFlips:
    def test_buffer_flip_corrupts_stored_chunk(self):
        injector = _always(FaultModel.PIM_BITFLIP_BUFFER)
        buf = DataBuffer(4, injector=injector)
        chunk = np.zeros(8, dtype=np.int64)
        buf.write(0, chunk)
        assert buf.read(0).any()            # one bit flipped in the slot
        [event] = injector.log.events
        assert event.model == "pim-bitflip-buffer"
        assert event.op == "buffer.write"

    def test_mmac_flip_corrupts_lane_output(self):
        injector = _always(FaultModel.PIM_BITFLIP_MMAC)
        mmac = MmacArray(Q, injector=injector)
        a = np.arange(8, dtype=np.int64)
        clean = MmacArray(Q).add(a, a)
        assert not np.array_equal(mmac.add(a, a), clean)
        assert injector.log.events[0].model == "pim-bitflip-mmac"

    def test_unit_level_corruption_vs_reference(self):
        injector = _always(FaultModel.PIM_BITFLIP_MMAC)
        got, want = _add_on_unit(*_rig(injector), np.random.default_rng(0))
        assert not np.array_equal(got, want)
        assert injector.log.events


class TestStuckRegions:
    def test_stuck_region_corrupts_reads_deterministically(self):
        injector = FaultInjector(default_plan(seed=2, scale=0.0,
                                              stuck_sites=(0,)))
        bank, layout, unit = _rig(injector, site=0)
        rng = np.random.default_rng(4)
        value = rng.integers(0, Q, N_ELEMENTS, dtype=np.int64)
        src = layout.allocate(1)
        store_poly(bank, src[0], value)
        injector.add_stuck_region(src[0].stuck_region(site=0, bit=12,
                                                      value=1))
        dst = layout.allocate(1)
        unit.execute("Move", dsts=dst.placements,
                     src_groups=[src.placements])
        got = load_poly(bank, dst[0])
        assert not np.array_equal(got, value)
        events = injector.log.events
        assert events and all(e.model == "pim-stuck-at" for e in events)
        assert all(e.site == 0 for e in events)
        # Re-running the same read path injects identically.
        unit.execute("Move", dsts=dst.placements,
                     src_groups=[src.placements])
        assert np.array_equal(load_poly(bank, dst[0]), got)

    def test_other_site_unaffected(self):
        injector = FaultInjector(default_plan(seed=2, scale=0.0,
                                              stuck_sites=(0,)))
        bank, layout, unit = _rig(injector, site=1)   # unit on healthy site
        rng = np.random.default_rng(4)
        value = rng.integers(0, Q, N_ELEMENTS, dtype=np.int64)
        src = layout.allocate(1)
        store_poly(bank, src[0], value)
        injector.add_stuck_region(
            src[0].stuck_region(site=0, bit=12, value=1))
        dst = layout.allocate(1)
        unit.execute("Move", dsts=dst.placements,
                     src_groups=[src.placements])
        assert np.array_equal(load_poly(bank, dst[0]), value)
