"""ReliabilityConfig: validation, digests, seeded streams, costs."""

import dataclasses
import json

import pytest

from repro.dram.reliability import DEFAULT_RELIABILITY, ReliabilityConfig
from repro.dram.timing import HBM2_TIMING
from repro.errors import ParameterError


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"retention_rate": 0.0},
        {"retention_rate": -1.0},
        {"scrub_interval_s": 0.0},
        {"scrub_interval_s": -1e-3},
        {"wear_factor": -0.1},
        {"multi_bit_fraction": -0.01},
        {"multi_bit_fraction": 1.0},
        {"escape_fraction": 1.5},
        {"multi_bit_fraction": 0.6, "escape_fraction": 0.5},
        {"n_regions": 0},
        {"spare_regions": -1},
        {"remap_threshold": 0},
        {"uncorrectable_remap_threshold": 0},
        {"rows_per_region": 0},
        {"correction_time_s": -1e-9},
    ])
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ParameterError):
            ReliabilityConfig(**overrides)

    def test_default_is_valid(self):
        assert DEFAULT_RELIABILITY.retention_rate > 0


class TestCanonicalAndDigest:
    def test_canonical_is_json_safe_and_complete(self):
        config = ReliabilityConfig(seed=3)
        doc = json.loads(json.dumps(config.canonical()))
        for field in dataclasses.fields(config):
            assert field.name in doc
        assert doc["seed"] == 3

    def test_digest_is_stable_and_knob_sensitive(self):
        a = ReliabilityConfig()
        assert a.digest() == ReliabilityConfig().digest()
        assert a.digest() != ReliabilityConfig(seed=1).digest()
        assert a.digest() != a.with_overrides(retention_rate=300.0).digest()


class TestRng:
    def test_same_key_same_stream(self):
        config = ReliabilityConfig(seed=7)
        a = config.rng("region", 4).random(16)
        b = ReliabilityConfig(seed=7).rng("region", 4).random(16)
        assert (a == b).all()

    def test_distinct_keys_and_seeds_diverge(self):
        config = ReliabilityConfig(seed=7)
        base = config.rng("region", 4).random(16)
        assert not (config.rng("region", 5).random(16) == base).all()
        assert not (ReliabilityConfig(seed=8).rng("region", 4)
                    .random(16) == base).all()


class TestOverridesAndCosts:
    def test_with_overrides_replaces_only_what_is_set(self):
        config = ReliabilityConfig()
        swept = config.with_overrides(retention_rate=1000.0)
        assert swept.retention_rate == 1000.0
        assert swept.scrub_interval_s == config.scrub_interval_s
        assert config.with_overrides() is config

    def test_override_still_validates(self):
        with pytest.raises(ParameterError):
            ReliabilityConfig().with_overrides(scrub_interval_s=-1.0)

    def test_scrub_and_migration_costs(self):
        config = ReliabilityConfig()
        per_pass = config.scrub_pass_s(HBM2_TIMING)
        assert per_pass == pytest.approx(
            config.rows_per_region
            * (HBM2_TIMING.t_ras + HBM2_TIMING.row_turnaround))
        assert config.migration_s(HBM2_TIMING) == pytest.approx(
            2.0 * per_pass)
