"""Tests for the DRAM substrate: geometry, timing, energy, banks."""

import numpy as np
import pytest

from repro.dram.bank import Bank
from repro.dram.configs import GDDR6X_4090, HBM2_A100, timing_for
from repro.dram.energy import DEFAULT_ENERGY
from repro.dram.geometry import CHUNK_BITS, ELEMENTS_PER_CHUNK, DramGeometry
from repro.errors import LayoutError, ParameterError


class TestGeometry:
    def test_a100_configuration(self):
        assert HBM2_A100.die_groups == 5           # five HBM stacks
        assert HBM2_A100.banks_per_group == 512    # 8 dies x 64 banks
        assert HBM2_A100.total_banks == 2560

    def test_4090_configuration(self):
        assert GDDR6X_4090.die_groups == 3
        assert GDDR6X_4090.banks_per_group == 128  # 4 dies x 32 banks
        assert GDDR6X_4090.total_dies == 12

    def test_fig7_running_example(self):
        # Fig. 7: "16 chunks (128 elements) are allocated to a bank per
        # limb" on the A100 at N = 2^16.
        assert HBM2_A100.elements_per_bank(2 ** 16) == 128
        assert HBM2_A100.chunks_per_bank(2 ** 16) == 16

    def test_chunks_per_row(self):
        # An 8Kb row holds 32 chunks of 256 bits (§VI-B).
        assert HBM2_A100.chunks_per_row == 32
        assert CHUNK_BITS == 256
        assert ELEMENTS_PER_CHUNK == 8

    def test_indivisible_degree_rejected(self):
        with pytest.raises(ParameterError):
            HBM2_A100.elements_per_bank(1000)

    def test_row_must_hold_whole_chunks(self):
        with pytest.raises(ParameterError):
            DramGeometry(name="bad", die_groups=1, dies_per_group=1,
                         banks_per_die=1, row_bits=300)


class TestTiming:
    def test_turnaround_is_pre_plus_act(self):
        timing = timing_for(HBM2_A100)
        assert timing.row_turnaround == pytest.approx(
            timing.t_rp + timing.t_rcd)

    def test_both_configs_have_timings(self):
        assert timing_for(HBM2_A100).t_rcd > 0
        assert timing_for(GDDR6X_4090).t_rcd > 0


class TestEnergy:
    def test_path_segments_order(self):
        e = DEFAULT_ENERGY
        assert e.near_bank_pj_per_bit < e.logic_die_pj_per_bit
        assert e.logic_die_pj_per_bit < e.gpu_access_pj_per_bit

    def test_paper_energy_ratio(self):
        # Fig. 4b: PIM yields ~2.87x DRAM access energy reduction.
        ratio = (DEFAULT_ENERGY.gpu_access_pj_per_bit
                 / DEFAULT_ENERGY.near_bank_pj_per_bit)
        assert 2.0 < ratio < 4.0


class TestBank:
    def setup_method(self):
        self.bank = Bank(HBM2_A100, rows=8)

    def test_activate_read_write(self):
        data = np.arange(8, dtype=np.int64)
        self.bank.activate(3)
        self.bank.write_chunk(3, 5, data)
        assert np.array_equal(self.bank.read_chunk(3, 5), data)
        assert self.bank.stats.activates == 1
        assert self.bank.stats.chunk_reads == 1
        assert self.bank.stats.chunk_writes == 1

    def test_closed_row_access_rejected(self):
        with pytest.raises(LayoutError):
            self.bank.read_chunk(0, 0)

    def test_wrong_open_row_rejected(self):
        self.bank.activate(1)
        with pytest.raises(LayoutError):
            self.bank.read_chunk(2, 0)

    def test_activate_implies_precharge(self):
        self.bank.activate(0)
        self.bank.activate(1)
        assert self.bank.stats.activates == 2
        assert self.bank.stats.precharges == 1
        assert self.bank.open_row == 1

    def test_out_of_range_row_rejected(self):
        with pytest.raises(LayoutError):
            self.bank.activate(100)

    def test_chunk_write_shape_enforced(self):
        self.bank.activate(0)
        with pytest.raises(LayoutError):
            self.bank.write_chunk(0, 0, np.zeros(4, dtype=np.int64))

    def test_stats_reset(self):
        self.bank.activate(0)
        self.bank.stats.reset()
        assert self.bank.stats.activates == 0
