"""Smoke tests: the shipped examples run end-to-end.

The long-running examples are exercised with reduced work where they
expose knobs; the quick ones run as-is.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    return runpy.run_path(str(EXAMPLES / name), run_name="not_main")


class TestExamplesImportable:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "bootstrap_demo.py",
        "encrypted_logistic_regression.py",
        "pim_functional_demo.py",
        "design_space_exploration.py",
    ])
    def test_loads_without_running_main(self, name):
        module = _run(name)
        entry_points = {"main", "encrypted_arithmetic", "buffer_sweep"}
        assert entry_points & set(module)


class TestQuickExamplesExecute:
    def test_quickstart(self, capsys):
        module = _run("quickstart.py")
        module["encrypted_arithmetic"]()
        module["anaheim_performance_model"]()
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "max error" in out

    def test_pim_functional_demo(self, capsys):
        module = _run("pim_functional_demo.py")
        module["main"]()
        out = capsys.readouterr().out
        assert "column partitioning saves" in out
        assert "verified against numpy" in out

    def test_logistic_regression(self, capsys):
        module = _run("encrypted_logistic_regression.py")
        module["main"]()
        out = capsys.readouterr().out
        assert "classification agreement" in out
