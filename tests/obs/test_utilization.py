"""Tests for the derived utilization accounting."""

import pytest

from repro.core.framework import AnaheimFramework
from repro.core.scheduler import ScheduleReport, Segment
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.obs.metrics import MetricsRegistry
from repro.obs.utilization import UtilizationReport
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.linear_transform_trace import hoisted_block


@pytest.fixture(scope="module")
def gantt_report():
    """The Fig. 4a hoisted-transform schedule, segments kept."""
    params = paper_params()
    blocks = hoisted_block(params.level_count, params.aux_count,
                           params.dnum, rotations=8)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                 keep_segments=True)
    return framework.run(blocks, params.degree, label="fig4a").report


class TestFromReport:
    def test_busy_fractions_match_timeline_within_1e9(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report,
                                             gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        # Busy time summed from the Gantt segments must agree with the
        # report's per-device aggregates...
        assert util.busy_time["gpu"] == pytest.approx(
            gantt_report.gpu_time, abs=1e-9)
        assert util.busy_time["pim"] == pytest.approx(
            gantt_report.pim_time, abs=1e-9)
        # ...and the makespan accounting must close.
        assert util.accounting_error < 1e-9
        total = sum(util.busy_fraction(d) for d in util.busy_time) \
            + util.transition_time / util.total_time
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_segments_and_aggregates_agree(self, gantt_report):
        """Deriving from segments or from aggregate times must match."""
        from_segments = UtilizationReport.from_report(gantt_report)
        stripped = gantt_report.scaled(1.0)  # scaled() drops segments
        assert not stripped.segments
        from_aggregates = UtilizationReport.from_report(stripped)
        for device in ("gpu", "pim"):
            assert from_segments.busy_time[device] == pytest.approx(
                from_aggregates.busy_time[device], rel=1e-12)

    def test_overlap_efficiency_is_bound_over_total(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report)
        assert util.overlap_efficiency == pytest.approx(
            gantt_report.pipelining_bound() / gantt_report.total_time)
        assert 0.0 < util.overlap_efficiency <= 1.0
        assert util.pipelining_headroom == pytest.approx(
            gantt_report.pipelining_headroom())

    def test_mmac_occupancy_recovers_stream_share(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report,
                                             pim=A100_NEAR_BANK)
        pim = A100_NEAR_BANK
        chunk_accesses = gantt_report.pim_internal_bytes / pim.chunk_bytes
        stream = (chunk_accesses / pim.units) * pim.cycles_per_chunk \
            / pim.clock_hz
        assert util.mmac_stream_time == pytest.approx(stream)
        assert util.mmac_lane_occupancy == pytest.approx(
            stream / util.busy_time["pim"])
        assert util.pim_act_overhead_fraction == pytest.approx(
            1.0 - util.mmac_lane_occupancy)
        # Streaming is a strict subset of PIM busy time: rows must
        # open/close around it.
        assert 0.0 < util.mmac_lane_occupancy < 1.0

    def test_bandwidth_utilizations_bounded(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report,
                                             gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        for value in (util.pim_internal_bw_utilization,
                      util.gpu_dram_bw_utilization,
                      util.transfer_bw_utilization):
            assert value is not None
            assert 0.0 < value <= 1.0

    def test_without_configs_hardware_fields_absent(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report)
        assert util.mmac_lane_occupancy is None
        assert util.gpu_dram_bw_utilization is None
        assert util.busy_time  # device accounting still present

    def test_empty_report(self):
        util = UtilizationReport.from_report(ScheduleReport(label="empty"))
        assert util.total_time == 0.0
        assert util.busy_fraction("gpu") == 0.0
        assert util.accounting_error == 0.0


class TestExport:
    def test_as_dict_json_safe_and_complete(self, gantt_report):
        import json
        util = UtilizationReport.from_report(gantt_report,
                                             gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        doc = json.loads(json.dumps(util.as_dict()))
        assert doc["label"] == "fig4a"
        assert set(doc["busy_fraction"]) == {"gpu", "pim"}
        assert doc["mmac_lane_occupancy"] is not None

    def test_record_publishes_gauges(self, gantt_report):
        registry = MetricsRegistry()
        util = UtilizationReport.from_report(gantt_report,
                                             gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        util.record(registry)
        busy = registry.get("anaheim_device_busy_fraction")
        assert busy.value(device="gpu") == pytest.approx(
            util.busy_fraction("gpu"))
        assert registry.get("anaheim_overlap_efficiency").value() == \
            pytest.approx(util.overlap_efficiency)
        assert registry.get("anaheim_mmac_lane_occupancy").value() == \
            pytest.approx(util.mmac_lane_occupancy)

    def test_render_mentions_devices(self, gantt_report):
        util = UtilizationReport.from_report(gantt_report,
                                             gpu=A100_80GB,
                                             pim=A100_NEAR_BANK)
        text = util.render()
        assert "gpu busy" in text and "pim busy" in text
        assert "MMAC lane occupancy" in text

    def test_synthetic_two_device_schedule(self):
        report = ScheduleReport(label="synth", total_time=10.0,
                                gpu_time=6.0, pim_time=3.0,
                                transition_time=1.0, transitions=2)
        report.segments = [
            Segment(start=0.0, end=6.0, device="gpu", name="a",
                    category=OpCategory.NTT),
            Segment(start=7.0, end=10.0, device="pim", name="b",
                    category=OpCategory.ELEMENTWISE),
        ]
        report.time_by_category = {OpCategory.NTT: 6.0,
                                   OpCategory.ELEMENTWISE: 3.0}
        util = UtilizationReport.from_report(report)
        assert util.busy_fraction("gpu") == pytest.approx(0.6)
        assert util.busy_fraction("pim") == pytest.approx(0.3)
        assert util.accounting_error == pytest.approx(0.0, abs=1e-12)
