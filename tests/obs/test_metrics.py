"""Tests for the label-aware metrics registry and its exporters."""

import json
import math

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (Counter, EventLog, Gauge, Histogram,
                               MetricsRegistry, format_value,
                               parse_prometheus)


class TestCounter:
    def test_accumulates_and_defaults_to_zero(self):
        counter = Counter("kernels_total", labelnames=("device",))
        counter.inc(device="gpu")
        counter.inc(2.5, device="gpu")
        counter.inc(device="pim")
        assert counter.value(device="gpu") == 3.5
        assert counter.value(device="pim") == 1.0
        assert counter.value(device="transfer") == 0.0

    def test_rejects_negative_increment(self):
        counter = Counter("faults_total")
        with pytest.raises(ParameterError):
            counter.inc(-1.0)

    def test_rejects_wrong_label_set(self):
        counter = Counter("kernels_total", labelnames=("device",))
        with pytest.raises(ParameterError):
            counter.inc(category="ntt")
        with pytest.raises(ParameterError):
            counter.inc(device="gpu", category="ntt")

    def test_invalid_names_rejected(self):
        with pytest.raises(ParameterError):
            Counter("bad-name")
        with pytest.raises(ParameterError):
            Counter("fine_name", labelnames=("bad-label",))


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("state")
        gauge.set(2.0)
        gauge.dec()
        assert gauge.value() == 1.0
        gauge.inc(0.5)
        assert gauge.value() == 1.5


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_named_bucket(self):
        """``le`` is upper-inclusive: an observation exactly on a bound
        counts in the bucket carrying that bound."""
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        assert hist.cumulative() == [0, 1, 1, 1]

    def test_below_first_bound_lands_in_first_bucket(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(0.25)
        assert hist.cumulative() == [1, 1, 1]

    def test_above_last_bound_lands_in_inf_bucket_only(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.cumulative() == [0, 0, 1]
        assert hist.count() == 1
        assert hist.sum() == 100.0

    def test_cumulative_counts_are_monotone(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 9.0):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 5

    def test_empty_quantile_is_nan(self):
        hist = Histogram("lat", buckets=(1.0,))
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(2):
            hist.observe(1.5)          # both in the (1, 2] bucket
        assert hist.quantile(0.5) == pytest.approx(1.5)

    def test_inf_bucket_quantile_clamps_to_last_finite_bound(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_range_validated(self):
        hist = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ParameterError):
            hist.quantile(1.5)

    def test_bucket_validation(self):
        with pytest.raises(ParameterError):
            Histogram("lat", buckets=())
        with pytest.raises(ParameterError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ParameterError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ParameterError):
            Histogram("lat", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", labelnames=("x",))
        second = registry.counter("a_total", labelnames=("x",))
        assert first is second

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ParameterError):
            registry.gauge("a_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labelnames=("x",))
        with pytest.raises(ParameterError):
            registry.counter("a_total", labelnames=("y",))

    def test_snapshot_is_sorted_and_digest_stable(self):
        def build():
            registry = MetricsRegistry()
            # Declare in one order, populate in another.
            registry.counter("z_total", labelnames=("k",)).inc(k="b")
            registry.counter("a_total").inc(3)
            registry.counter("z_total", labelnames=("k",)).inc(k="a")
            registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
            return registry

        first, second = build(), build()
        names = [f["name"] for f in first.snapshot()["metrics"]]
        assert names == sorted(names)
        labels = [s["labels"]["k"] for s in
                  first.get("z_total").snapshot_samples()]
        assert labels == ["a", "b"]
        assert first.digest() == second.digest()
        assert first.render_prometheus() == second.render_prometheus()

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.5,)).observe(1.0)
        json.dumps(registry.snapshot())


class TestPrometheusExposition:
    def test_render_and_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("kernels_total", "Kernels",
                         labelnames=("device",)).inc(7, device="gpu")
        registry.gauge("state", "State").set(2)
        hist = registry.histogram("lat_seconds", "Latency",
                                  labelnames=("kind",),
                                  buckets=(0.1, 1.0))
        hist.observe(0.05, kind="run")
        hist.observe(5.0, kind="run")
        text = registry.render_prometheus()
        parsed = parse_prometheus(text)
        assert parsed["types"] == {"kernels_total": "counter",
                                   "state": "gauge",
                                   "lat_seconds": "histogram"}
        samples = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value in parsed["samples"]}
        assert samples[("kernels_total", (("device", "gpu"),))] == 7
        assert samples[("lat_seconds_bucket",
                        (("kind", "run"), ("le", "+Inf")))] == 2
        assert samples[("lat_seconds_count", (("kind", "run"),))] == 2

    def test_histogram_exposition_has_inf_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        assert 'h_bucket{le="+Inf"} 1' in registry.render_prometheus()

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("x",)).inc(x='a"b\\c')
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["samples"][0][0] == "c_total"

    def test_parser_rejects_malformed_line(self):
        with pytest.raises(ParameterError):
            parse_prometheus("# TYPE x counter\nx 1 2 3 4\n")

    def test_parser_rejects_untyped_sample(self):
        with pytest.raises(ParameterError):
            parse_prometheus("mystery_total 1\n")

    def test_parser_rejects_negative_counter(self):
        with pytest.raises(ParameterError):
            parse_prometheus("# TYPE c_total counter\nc_total -1\n")

    def test_parser_rejects_non_monotone_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n")
        with pytest.raises(ParameterError):
            parse_prometheus(text)

    def test_parser_rejects_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                "h_sum 1\nh_count 5\n")
        with pytest.raises(ParameterError):
            parse_prometheus(text)

    def test_parser_rejects_bare_histogram_sample(self):
        with pytest.raises(ParameterError):
            parse_prometheus("# TYPE h histogram\nh 1\n")


class TestFormatValue:
    def test_integers_render_integral(self):
        assert format_value(3.0) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("nan")) == "NaN"


class TestEventLog:
    def test_events_are_sequenced_and_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("run", workload="Boot")
        log.emit("utilization", busy=0.8)
        lines = log.to_jsonl().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]
        path = tmp_path / "events.jsonl"
        log.write(path)
        assert path.read_text() == log.to_jsonl()


class TestMerge:
    """Registry/family merge — the worker-pool seam.  Counters and
    histograms accumulate, gauges replay the incoming write, and any
    structural mismatch is a one-line ParameterError."""

    def test_counter_merge_adds_by_label(self):
        a = Counter("kernels_total", labelnames=("device",))
        b = Counter("kernels_total", labelnames=("device",))
        a.inc(2.0, device="gpu")
        b.inc(3.0, device="gpu")
        b.inc(1.0, device="pim")
        a.merge(b)
        assert a.value(device="gpu") == 5.0
        assert a.value(device="pim") == 1.0

    def test_gauge_merge_takes_incoming_value(self):
        a = Gauge("depth")
        b = Gauge("depth")
        a.set(7.0)
        b.set(3.0)
        a.merge(b)
        assert a.value() == 3.0

    def test_histogram_merge_accumulates_buckets_sum_count(self):
        a = Histogram("lat", buckets=(1.0, 2.0))
        b = Histogram("lat", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.cumulative() == [1, 2, 3]
        assert a.count() == 3
        assert a.sum() == pytest.approx(11.0)

    def test_histogram_bucket_mismatch_is_one_line_error(self):
        a = Histogram("lat", buckets=(1.0, 2.0))
        b = Histogram("lat", buckets=(1.0, 4.0))
        with pytest.raises(ParameterError) as err:
            a.merge(b)
        assert "\n" not in str(err.value)
        assert "bucket edges" in str(err.value)

    def test_kind_and_label_mismatches_rejected(self):
        counter = Counter("x")
        with pytest.raises(ParameterError):
            counter.merge(Gauge("x"))
        labeled = Counter("x", labelnames=("device",))
        with pytest.raises(ParameterError):
            counter.merge(labeled)

    def test_registry_merge_adopts_missing_families(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("shared_total").inc(1.0)
        b.counter("shared_total").inc(2.0)
        b.gauge("only_in_b").set(5.0)
        b.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.get("shared_total").value() == 3.0
        assert a.get("only_in_b").value() == 5.0
        assert a.get("lat_seconds").buckets == (1.0, 2.0)
        assert a.get("lat_seconds").count() == 1

    def test_merge_in_unit_order_matches_serial_digest(self):
        """Per-unit subtotals folded in order reproduce the digest of
        one registry that recorded everything itself — the property
        the parallel serve path relies on."""
        increments = [0.1, 0.2, 0.30000000000000004, 0.4]
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        for amount in increments:
            unit = MetricsRegistry()
            unit.counter("work_total").inc(amount)
            merged.merge(unit)
            # the serial path also records through a per-unit registry,
            # so both sides perform the same float additions
            lone = MetricsRegistry()
            lone.counter("work_total").inc(amount)
            serial.merge(lone)
        assert merged.digest() == serial.digest()

    def test_registry_merge_structural_mismatch_propagates(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ParameterError):
            a.merge(b)
