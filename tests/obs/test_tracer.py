"""Tests for the span/counter tracer."""

import pytest

from repro.obs.profile import render_counters, render_span_tree
from repro.obs.tracer import Tracer, maybe_span


class FakeClock:
    """Deterministic clock: each read advances one second."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        outer, first, second = tracer.spans
        assert outer.parent == -1 and outer.depth == 0
        assert first.parent == outer.index and first.depth == 1
        assert second.parent == outer.index
        assert tracer.children(outer.index) == [first, second]
        assert tracer.roots() == [outer]

    def test_durations_nest(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.duration > inner.duration > 0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_self_time_excludes_children(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.spans[0]
        assert tracer.self_time(outer) == pytest.approx(
            outer.duration - tracer.spans[1].duration)

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert not tracer.spans[0].open
        assert tracer._stack == []

    def test_raising_span_is_tagged_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span.tags["status"] == "error"
        assert not span.open and span.duration > 0

    def test_error_tag_does_not_clobber_explicit_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing", status="expected"):
                raise ValueError("boom")
        assert tracer.spans[0].tags["status"] == "expected"

    def test_successful_span_has_no_status_tag(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        assert "status" not in tracer.spans[0].tags

    def test_tags_and_find(self):
        tracer = Tracer()
        with tracer.span("lower.modup", limbs=54):
            pass
        (span,) = tracer.find("lower.modup")
        assert span.tags == {"limbs": 54}

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("kernels")
        tracer.count("kernels")
        tracer.count("bytes", 128.0)
        assert tracer.counters == {"kernels": 2.0, "bytes": 128.0}


class TestMaybeSpan:
    def test_none_tracer_is_noop(self):
        with maybe_span(None, "anything"):
            pass  # must not raise; nothing to record

    def test_real_tracer_records(self):
        tracer = Tracer()
        with maybe_span(tracer, "real"):
            pass
        assert [s.name for s in tracer.spans] == ["real"]


class TestRendering:
    def test_span_tree_aggregates_by_name(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("pass"):
                    pass
        art = render_span_tree(tracer)
        assert "run" in art
        assert "  pass" in art
        # Three same-named children collapse into one row with calls=3.
        (row,) = [line for line in art.splitlines() if "pass" in line]
        assert " 3" in row

    def test_empty_tracer_renders_placeholder(self):
        tracer = Tracer()
        assert "no spans" in render_span_tree(tracer)
        assert "no counters" in render_counters(tracer)

    def test_counters_table(self):
        tracer = Tracer()
        tracer.count("gpu.kernel_costs", 1234)
        art = render_counters(tracer)
        assert "gpu.kernel_costs" in art
        assert "1,234" in art
