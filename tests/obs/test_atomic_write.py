"""Crash-safety of the observability JSON writer.

``write_json`` must be atomic: a writer killed mid-write leaves the
previous file contents intact and no temp-file litter — never a
truncated/half-written JSON document.
"""

import json
import os

import pytest

from repro.obs import export


def test_write_json_roundtrip(tmp_path):
    path = tmp_path / "doc.json"
    export.write_json(path, {"a": 1, "b": [1, 2, 3]})
    assert json.loads(path.read_text()) == {"a": 1, "b": [1, 2, 3]}


def test_write_json_overwrites_atomically(tmp_path):
    path = tmp_path / "doc.json"
    export.write_json(path, {"generation": 1})
    export.write_json(path, {"generation": 2})
    assert json.loads(path.read_text()) == {"generation": 2}
    assert os.listdir(tmp_path) == ["doc.json"]


class _Killed(BaseException):
    """Mimics an asynchronous kill (KeyboardInterrupt-like: not an
    Exception subclass, so naive ``except Exception`` misses it)."""


def _dump_then_die(document, fh, **kwargs):
    """A json.dump that writes half the payload, then dies."""
    text = json.dumps(document, **kwargs)
    fh.write(text[: len(text) // 2])
    fh.flush()
    raise _Killed()


def test_kill_mid_write_preserves_previous_contents(tmp_path, monkeypatch):
    path = tmp_path / "doc.json"
    export.write_json(path, {"generation": 1, "units": list(range(50))})
    before = path.read_bytes()

    monkeypatch.setattr(export.json, "dump", _dump_then_die)
    with pytest.raises(_Killed):
        export.write_json(path, {"generation": 2, "units": []})

    # The original document survives byte-for-byte...
    assert path.read_bytes() == before
    assert json.loads(path.read_text())["generation"] == 1
    # ...and the aborted temp file was cleaned up.
    assert os.listdir(tmp_path) == ["doc.json"]


def test_kill_mid_first_write_leaves_nothing(tmp_path, monkeypatch):
    path = tmp_path / "fresh.json"
    monkeypatch.setattr(export.json, "dump", _dump_then_die)
    with pytest.raises(_Killed):
        export.write_json(path, {"generation": 1})
    assert not path.exists()
    assert os.listdir(tmp_path) == []


def test_partial_write_never_visible(tmp_path, monkeypatch):
    """Even while dying, readers of the target path never observe a
    half-written document (the partial bytes only ever hit the temp)."""
    path = tmp_path / "doc.json"
    export.write_json(path, {"ok": True})

    observed = []
    original_dump = json.dump

    def dump_and_peek(document, fh, **kwargs):
        observed.append(path.read_text())
        return original_dump(document, fh, **kwargs)

    monkeypatch.setattr(export.json, "dump", dump_and_peek)
    export.write_json(path, {"ok": False})
    # What a concurrent reader saw mid-write was the *old* document.
    assert observed == ['{\n  "ok": true\n}\n']
    assert json.loads(path.read_text()) == {"ok": False}
