"""Tests for the tracer threading through the execution stack."""

import pytest

from repro.core.framework import AnaheimFramework
from repro.gpu.configs import A100_80GB
from repro.obs.tracer import Tracer
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.linear_transform_trace import hoisted_block


@pytest.fixture(scope="module")
def blocks():
    params = paper_params()
    return (hoisted_block(params.level_count, params.aux_count,
                          params.dnum, rotations=4),
            params.degree)


class TestOptIn:
    def test_default_framework_has_no_tracer(self, blocks):
        program, degree = blocks
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        result = framework.run(program, degree)
        assert result.report.total_time > 0
        # Observability is opt-in: nothing holds a tracer by default.
        assert framework.tracer is None
        assert framework.gpu_model.tracer is None
        assert framework.pim_executor.tracer is None

    def test_default_path_records_zero_spans(self, blocks):
        program, degree = blocks
        witness = Tracer()          # exists but is never passed in
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        framework.run(program, degree)
        assert witness.spans == []
        assert witness.counters == {}

    def test_results_identical_with_and_without_tracer(self, blocks):
        program, degree = blocks
        plain = AnaheimFramework(A100_80GB, A100_NEAR_BANK).run(
            program, degree).report
        traced = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                  tracer=Tracer()).run(program, degree).report
        assert traced.total_time == pytest.approx(plain.total_time)
        assert traced.energy == pytest.approx(plain.energy)
        assert traced.transitions == plain.transitions


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced(self, blocks):
        program, degree = blocks
        tracer = Tracer()
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                     tracer=tracer)
        report = framework.run(program, degree, label="traced").report
        return tracer, report

    def test_framework_phases_spanned(self, traced):
        tracer, _ = traced
        names = {s.name for s in tracer.spans}
        assert "framework.run" in names
        assert "framework.lower" in names
        assert "framework.schedule" in names

    def test_lowering_passes_spanned_per_block_kind(self, traced):
        tracer, _ = traced
        assert tracer.find("lower.modup")
        assert tracer.counters["lower.blocks"] > 0
        assert tracer.counters["lower.kernels.gpu"] > 0
        assert tracer.counters["lower.kernels.pim"] > 0

    def test_scheduler_dispatch_spanned(self, traced):
        tracer, report = traced
        gpu_dispatches = [s for s in tracer.spans
                          if s.name.startswith("dispatch.gpu.")]
        pim_dispatches = [s for s in tracer.spans
                          if s.name.startswith("dispatch.pim.")]
        assert len(gpu_dispatches) == tracer.counters["scheduler.kernels.gpu"]
        assert len(pim_dispatches) == tracer.counters["scheduler.kernels.pim"]
        assert tracer.counters["scheduler.transitions"] == report.transitions

    def test_device_models_count_costings(self, traced):
        tracer, report = traced
        assert (tracer.counters["gpu.kernel_costs"]
                == tracer.counters["scheduler.kernels.gpu"])
        assert (tracer.counters["pim.kernel_costs"]
                == tracer.counters["scheduler.kernels.pim"])
        assert tracer.counters["pim.activations"] == report.pim_activations
        assert tracer.counters["gpu.dram_bytes"] == pytest.approx(
            report.gpu_dram_bytes)

    def test_spans_nest_under_framework_run(self, traced):
        tracer, _ = traced
        (root,) = tracer.roots()
        assert root.name == "framework.run"
        assert all(s.duration >= 0 for s in tracer.spans)

    def test_compare_shares_one_tracer(self, blocks):
        program, degree = blocks
        tracer = Tracer()
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                     tracer=tracer)
        framework.compare(program, degree, label="cmp")
        assert len(tracer.find("framework.run")) == 2
