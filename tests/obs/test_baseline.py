"""Tests for baseline writing and regression checking."""

import json

import pytest

from repro.core.scheduler import ScheduleReport
from repro.obs.baseline import (BASELINE_METRICS, baseline_metrics,
                                baseline_path, check_baseline, load_baseline,
                                write_baseline)


def _report(total=1.0, gpu=0.6, pim=0.3) -> ScheduleReport:
    report = ScheduleReport(label="bench")
    report.total_time = total
    report.gpu_time = gpu
    report.pim_time = pim
    report.transition_time = total - gpu - pim
    report.energy_gpu_dynamic = 5.0
    report.energy_gpu_idle = 1.0
    report.energy_pim = 2.0
    report.gpu_dram_bytes = 1e9
    return report


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        path = write_baseline(tmp_path, "Boot", _report(),
                              config={"gpu": "A100 80GB"})
        assert path == baseline_path(tmp_path, "Boot")
        assert path.name == "BENCH_Boot.json"
        doc = load_baseline(tmp_path, "Boot")
        assert doc["workload"] == "Boot"
        assert doc["config"] == {"gpu": "A100 80GB"}
        assert doc["metrics"]["total_time"] == pytest.approx(1.0)

    def test_creates_directory(self, tmp_path):
        path = write_baseline(tmp_path / "nested" / "dir", "HELR", _report())
        assert path.exists()

    def test_metrics_cover_declared_set(self):
        metrics = baseline_metrics(_report())
        assert set(metrics) == set(BASELINE_METRICS)
        assert metrics["edp"] == pytest.approx(8.0 * 1.0)


class TestCheck:
    def test_identical_run_passes(self, tmp_path):
        write_baseline(tmp_path, "Boot", _report())
        baseline = load_baseline(tmp_path, "Boot")
        assert check_baseline(baseline, _report()) == []

    def test_perturbation_beyond_tolerance_fails(self, tmp_path):
        write_baseline(tmp_path, "Boot", _report())
        baseline = load_baseline(tmp_path, "Boot")
        regressions = check_baseline(baseline, _report(total=1.10),
                                     tolerance=0.02)
        metrics = {r.metric for r in regressions}
        assert "total_time" in metrics
        assert "edp" in metrics  # edp = energy * total_time moves too

    def test_within_tolerance_passes(self, tmp_path):
        write_baseline(tmp_path, "Boot", _report())
        baseline = load_baseline(tmp_path, "Boot")
        assert check_baseline(baseline, _report(total=1.005, gpu=0.605),
                              tolerance=0.02) == []

    def test_speedup_also_flags(self, tmp_path):
        # Deterministic model: unexplained *improvements* are drift too.
        write_baseline(tmp_path, "Boot", _report())
        baseline = load_baseline(tmp_path, "Boot")
        regressions = check_baseline(baseline, _report(total=0.5))
        assert any(r.metric == "total_time" for r in regressions)

    def test_describe_names_metric_and_values(self, tmp_path):
        write_baseline(tmp_path, "Boot", _report())
        baseline = load_baseline(tmp_path, "Boot")
        (first, *_) = check_baseline(baseline, _report(total=2.0))
        text = first.describe()
        assert first.metric in text
        assert "baseline" in text

    def test_zero_baseline_metric(self, tmp_path):
        report = _report()
        report.gpu_dram_bytes = 0.0
        write_baseline(tmp_path, "Boot", report)
        baseline = load_baseline(tmp_path, "Boot")
        assert check_baseline(baseline, report) == []
        moved = _report()
        moved.gpu_dram_bytes = 1.0
        regressions = check_baseline(baseline, moved)
        assert any(r.metric == "gpu_dram_bytes" for r in regressions)

    def test_handwritten_baseline_json(self, tmp_path):
        # A baseline edited by hand (or by CI) still checks cleanly.
        path = baseline_path(tmp_path, "X")
        path.write_text(json.dumps(
            {"workload": "X", "metrics": {"total_time": 1.0}}))
        baseline = load_baseline(tmp_path, "X")
        assert check_baseline(baseline, _report()) == []
        assert check_baseline(baseline, _report(total=1.5)) != []
