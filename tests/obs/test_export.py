"""Tests for the Chrome-trace and manifest exporters."""

import json

import pytest

from repro.core.framework import AnaheimFramework
from repro.gpu.configs import A100_80GB, CHEDDAR
from repro.obs.export import (chrome_trace_from_report,
                              chrome_trace_from_tracer, merge_traces,
                              report_dict, run_manifest, write_json)
from repro.obs.provenance import config_dict, environment_info, git_sha
from repro.obs.tracer import Tracer
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.linear_transform_trace import hoisted_block


@pytest.fixture(scope="module")
def result():
    params = paper_params()
    blocks = hoisted_block(params.level_count, params.aux_count,
                           params.dnum, rotations=4)
    framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                 keep_segments=True)
    return framework.run(blocks, params.degree, label="hoisted K=4")


class TestChromeTrace:
    def test_report_segments_become_complete_events(self, result):
        doc = chrome_trace_from_report(result.report)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(result.report.segments)
        for event in events:
            assert event["ts"] >= 0.0
            assert event["dur"] > 0.0
            assert event["tid"] in (1, 2)

    def test_gpu_and_pim_land_on_distinct_tracks(self, result):
        doc = chrome_trace_from_report(result.report)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {1, 2}

    def test_metadata_names_threads(self, result):
        doc = chrome_trace_from_report(result.report)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"GPU", "PIM"} <= names

    def test_simulated_seconds_map_to_microseconds(self, result):
        doc = chrome_trace_from_report(result.report)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        last = max(e["ts"] + e["dur"] for e in events)
        assert last == pytest.approx(result.report.total_time * 1e6)

    def test_tracer_spans_export(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        doc = chrome_trace_from_tracer(tracer)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        assert events[1]["args"] == {"detail": 1}

    def test_merge_traces_concatenates(self, result):
        a = chrome_trace_from_report(result.report, pid=0)
        b = chrome_trace_from_report(result.report, pid=1)
        merged = merge_traces(a, b)
        assert len(merged["traceEvents"]) == (len(a["traceEvents"])
                                              + len(b["traceEvents"]))

    def test_document_is_json_serializable(self, result, tmp_path):
        path = tmp_path / "trace.json"
        write_json(path, chrome_trace_from_report(result.report))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestReportDict:
    def test_all_metrics_present(self, result):
        out = report_dict(result.report)
        for key in ("total_time", "gpu_time", "pim_time", "transitions",
                    "gpu_dram_bytes", "energy", "edp",
                    "pipelining_headroom"):
            assert key in out
        assert out["energy"] == pytest.approx(result.report.energy)
        assert "segments" not in out

    def test_segments_opt_in(self, result):
        out = report_dict(result.report, segments=True)
        assert len(out["segments"]) == len(result.report.segments)
        assert out["segments"][0]["device"] in ("gpu", "pim")

    def test_category_keys_use_figure_labels(self, result):
        out = report_dict(result.report)
        assert "(I)NTT" in out["time_by_category"]


class TestManifest:
    def test_full_provenance(self, result):
        manifest = run_manifest(result.report, gpu=A100_80GB,
                                pim=A100_NEAR_BANK, library=CHEDDAR,
                                options=result.options,
                                workload="hoisted", degree=2 ** 16)
        assert manifest["workload"] == "hoisted"
        assert manifest["config"]["gpu"]["name"] == "A100 80GB"
        assert manifest["config"]["pim"]["variant"] == "near-bank"
        assert manifest["config"]["lowering_options"]["offload"] is True
        assert manifest["config"]["lowering_level"] == result.options.describe()
        assert manifest["report"]["edp"] == pytest.approx(result.report.edp)
        json.dumps(manifest)  # must be fully serializable

    def test_environment_info(self):
        info = environment_info()
        assert info["python"]
        sha = git_sha()
        assert sha is None or len(sha) == 40


class TestConfigDict:
    def test_nested_dataclasses_and_enums(self):
        out = config_dict(A100_NEAR_BANK)
        assert out["variant"] == "near-bank"
        assert isinstance(out["geometry"], dict)
        json.dumps(out)

    def test_passthrough_and_fallback(self):
        assert config_dict(3) == 3
        assert config_dict(None) is None
        assert config_dict(frozenset({"b", "a"})) == ["a", "b"]
        assert isinstance(config_dict(object()), str)
