"""Tests for homomorphic Chebyshev polynomial evaluation."""

import numpy as np
import pytest

from repro.ckks.polyeval import (ChebyshevEvaluator, chebyshev_coefficients,
                                 chebyshev_reference)


class TestCoefficients:
    def test_interpolation_quality(self):
        coeffs = chebyshev_coefficients(np.exp, 12, (-1, 1))
        x = np.linspace(-1, 1, 101)
        err = np.abs(chebyshev_reference(coeffs, x, (-1, 1)) - np.exp(x))
        assert err.max() < 1e-10

    def test_scaled_interval(self):
        coeffs = chebyshev_coefficients(np.sin, 25, (-4, 4))
        x = np.linspace(-4, 4, 101)
        err = np.abs(chebyshev_reference(coeffs, x, (-4, 4)) - np.sin(x))
        assert err.max() < 1e-8

    def test_bad_interval_rejected(self):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            chebyshev_coefficients(np.exp, 5, (1, -1))


class TestHomomorphicEvaluation:
    def test_depth_accounting(self, deep_context):
        che = ChebyshevEvaluator(deep_context)
        assert che.depth(1, normalized=False) == 2
        assert che.depth(4, normalized=False) == 3
        assert che.depth(31, normalized=False) == 6
        assert che.depth(31, normalized=True) == 8

    def test_linear_polynomial(self, deep_context, rng, deep_params):
        che = ChebyshevEvaluator(deep_context)
        x = rng.uniform(-1, 1, deep_params.slot_count)
        ct = deep_context.encrypt_message(x)
        out = che.evaluate(ct, [0.5, 2.0])  # 0.5 + 2*T_1
        got = deep_context.decrypt_message(out).real
        assert np.abs(got - (0.5 + 2 * x)).max() < 5e-3

    def test_exp_on_unit_interval(self, deep_context, rng, deep_params):
        che = ChebyshevEvaluator(deep_context)
        x = rng.uniform(-0.95, 0.95, deep_params.slot_count)
        ct = deep_context.encrypt_message(x)
        coeffs = chebyshev_coefficients(np.exp, 15, (-1, 1))
        got = deep_context.decrypt_message(che.evaluate(ct, coeffs)).real
        assert np.abs(got - np.exp(x)).max() < 5e-3

    def test_sin_on_wide_interval(self, deep_context, rng, deep_params):
        che = ChebyshevEvaluator(deep_context)
        x = rng.uniform(-3.8, 3.8, deep_params.slot_count)
        ct = deep_context.encrypt_message(x)
        coeffs = chebyshev_coefficients(np.sin, 23, (-4, 4))
        got = deep_context.decrypt_message(
            che.evaluate(ct, coeffs, (-4, 4))).real
        assert np.abs(got - np.sin(x)).max() < 5e-3

    def test_constant_polynomial(self, deep_context, rng, deep_params):
        che = ChebyshevEvaluator(deep_context)
        ct = deep_context.encrypt_message(
            rng.normal(size=deep_params.slot_count))
        out = che.evaluate(ct, [3.25])
        got = deep_context.decrypt_message(out)
        assert np.abs(got - 3.25).max() < 5e-3

    def test_output_level_matches_depth(self, deep_context, rng, deep_params):
        che = ChebyshevEvaluator(deep_context)
        ct = deep_context.encrypt_message(
            rng.uniform(-1, 1, deep_params.slot_count))
        coeffs = chebyshev_coefficients(np.exp, 15, (-1, 1))
        out = che.evaluate(ct, coeffs)
        consumed = ct.level_count - out.level_count
        assert consumed <= che.depth(15, normalized=False)
