"""Noise-estimator validation against measured ciphertext noise."""

import numpy as np
import pytest

from repro.ckks.noise import NoiseEstimator, measure_noise_bits

#: Allowed gap between predicted and measured noise, in bits.  The
#: estimator is an average-case heuristic; being within a few bits over
#: multi-op circuits is what production libraries achieve too.
TOLERANCE_BITS = 6.0


@pytest.fixture()
def estimator(small_params):
    return NoiseEstimator(small_params)


def _msg(rng, n):
    return rng.normal(size=n) * 0.5


class TestPredictionsVsMeasurement:
    def test_fresh_encryption(self, small_context, small_params, rng,
                              estimator):
        u = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        measured = measure_noise_bits(small_context, ct, u)
        predicted = estimator.fresh().bits
        assert abs(measured - predicted) < TOLERANCE_BITS

    def test_addition_grows_slowly(self, small_context, small_params, rng,
                                   estimator):
        u = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        acc, expect = ct, u
        estimate = estimator.fresh()
        for _ in range(8):
            acc = small_context.add(acc, ct)
            expect = expect + u
            estimate = estimator.add(estimate, estimator.fresh())
        measured = measure_noise_bits(small_context, acc, expect)
        assert abs(measured - estimate.bits) < TOLERANCE_BITS

    def test_hmult_with_rescale(self, small_context, small_params, rng,
                                estimator):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        out = small_context.multiply(small_context.encrypt_message(u),
                                     small_context.encrypt_message(v))
        dropped = small_params.moduli[-1]
        estimate = estimator.after_hmult(estimator.fresh(),
                                         estimator.fresh(), dropped)
        measured = measure_noise_bits(small_context, out, u * v)
        assert abs(measured - estimate.bits) < TOLERANCE_BITS

    def test_rotation(self, small_context, small_params, rng, estimator):
        u = _msg(rng, small_params.slot_count)
        out = small_context.rotate(small_context.encrypt_message(u), 1)
        estimate = estimator.rotate(estimator.fresh())
        measured = measure_noise_bits(small_context, out, np.roll(u, -1))
        assert abs(measured - estimate.bits) < TOLERANCE_BITS

    def test_depth_two_chain(self, deep_context, deep_params, rng):
        estimator = NoiseEstimator(deep_params)
        u = _msg(rng, deep_params.slot_count)
        ct = deep_context.encrypt_message(u)
        out = deep_context.multiply(ct, ct)
        out = deep_context.multiply(out, out)
        expect = (u * u) ** 2
        estimate = estimator.fresh()
        for level in (1, 2):
            dropped = deep_params.moduli[deep_params.level_count - level]
            estimate = estimator.after_hmult(estimate, estimate, dropped)
        measured = measure_noise_bits(deep_context, out, expect)
        assert abs(measured - estimate.bits) < TOLERANCE_BITS + 2


class TestBudgetSemantics:
    def test_precision_decreases_with_depth(self, small_params):
        estimator = NoiseEstimator(small_params)
        fresh = estimator.fresh()
        dropped = small_params.moduli[-1]
        deeper = estimator.after_hmult(fresh, fresh, dropped)
        assert deeper.precision_bits() < fresh.precision_bits()

    def test_fresh_precision_reasonable(self, small_params):
        estimator = NoiseEstimator(small_params)
        # 28-bit scale minus ~10 bits of noise: double-digit precision.
        assert 8 < estimator.fresh().precision_bits() < 28

    def test_addition_cheaper_than_multiplication(self, small_params):
        estimator = NoiseEstimator(small_params)
        fresh = estimator.fresh()
        added = estimator.add(fresh, fresh)
        multiplied = estimator.after_hmult(fresh, fresh,
                                           small_params.moduli[-1])
        assert added.bits < multiplied.bits
