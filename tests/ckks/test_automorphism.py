"""Tests for Galois automorphisms."""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.ckks.automorphism import (apply_automorphism, conjugation_element,
                                     galois_element)
from repro.ckks.rns import RnsPolynomial
from repro.errors import ParameterError

N = 64
BASIS = tuple(modmath.generate_primes(2, N, bits=26))


def _random_poly(seed):
    rng = np.random.default_rng(seed)
    return RnsPolynomial.random_uniform(N, BASIS, rng, is_ntt=False)


class TestGaloisElements:
    def test_rotation_elements_are_powers_of_five(self):
        assert galois_element(0, N) == 1
        assert galois_element(1, N) == 5
        assert galois_element(2, N) == 25 % (2 * N)

    def test_rotation_wraps_mod_half_slots(self):
        assert galois_element(N // 2, N) == galois_element(0, N)

    def test_conjugation_element(self):
        assert conjugation_element(N) == 2 * N - 1


class TestApplyAutomorphism:
    def test_identity(self):
        p = _random_poly(0)
        out = apply_automorphism(p, 1)
        assert np.array_equal(out.coeffs, p.coeffs)

    def test_composition(self):
        p = _random_poly(1)
        g1 = galois_element(1, N)
        g2 = galois_element(2, N)
        sequential = apply_automorphism(apply_automorphism(p, g1), g2)
        combined = apply_automorphism(p, g1 * g2 % (2 * N))
        assert np.array_equal(sequential.coeffs, combined.coeffs)

    def test_inverse_restores(self):
        p = _random_poly(2)
        g = galois_element(3, N)
        g_inv = pow(g, -1, 2 * N)
        restored = apply_automorphism(apply_automorphism(p, g), g_inv)
        assert np.array_equal(restored.coeffs, p.coeffs)

    def test_sign_flip_on_wrap(self):
        # φ_g(X) = X^g; for coefficient index i with i*g >= N (mod 2N)
        # the coefficient lands negated.
        coeffs = np.zeros((1, N), dtype=np.int64)
        coeffs[0, N - 1] = 1  # X^{N-1}
        p = RnsPolynomial(coeffs, BASIS[:1], is_ntt=False)
        out = apply_automorphism(p, 5)
        # (N-1)*5 mod 2N for N=64: 315 mod 128 = 59 < N, no flip here;
        # verify against a direct evaluation instead.
        idx = (N - 1) * 5 % (2 * N)
        q = BASIS[0]
        if idx >= N:
            assert out.coeffs[0, idx - N] == q - 1
        else:
            assert out.coeffs[0, idx] == 1

    def test_even_galois_rejected(self):
        p = _random_poly(3)
        with pytest.raises(ParameterError):
            apply_automorphism(p, 2)

    def test_preserves_domain_flag(self):
        p = _random_poly(4).to_ntt()
        out = apply_automorphism(p, 5)
        assert out.is_ntt

    def test_ntt_domain_consistency(self):
        """Automorphism commutes with the (I)NTT round-trip."""
        p = _random_poly(5)
        via_coeff = apply_automorphism(p, 5).to_ntt()
        via_ntt = apply_automorphism(p.to_ntt(), 5)
        assert np.array_equal(via_coeff.coeffs, via_ntt.coeffs)

    def test_slot_rotation_semantics(self, small_context, rng, small_params):
        """φ_{5^r} rotates the decoded slot vector left by r."""
        from repro.ckks.cipher import Plaintext
        n = small_params.slot_count
        u = rng.normal(size=n) + 1j * rng.normal(size=n)
        enc = small_context.encoder
        pt = enc.encode(u)
        g = galois_element(3, small_params.degree)
        rotated = Plaintext(poly=apply_automorphism(pt.poly, g),
                            scale=pt.scale)
        got = enc.decode(rotated)
        assert np.abs(got - np.roll(u, -3)).max() < 1e-5
