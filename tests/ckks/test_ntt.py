"""Tests for the negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import instrument, modmath
from repro.ckks.ntt import (NttContext, bit_reverse_indices,
                            clear_twiddle_cache, negacyclic_convolution,
                            twiddle_cache_info)
from repro.errors import ParameterError
from repro.obs.tracer import Tracer

PRIME = modmath.generate_primes(1, 256, bits=28)[0]


@pytest.fixture(scope="module")
def ctx():
    return NttContext(256, PRIME)


class TestBitReverse:
    def test_small(self):
        assert bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_involution(self):
        rev = bit_reverse_indices(64)
        assert np.array_equal(rev[rev], np.arange(64))


class TestNttContext:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            NttContext(100, PRIME)

    def test_rejects_unfriendly_prime(self):
        with pytest.raises(ParameterError):
            NttContext(256, 97)

    def test_psi_has_order_2n(self, ctx):
        assert pow(ctx.psi, 512, PRIME) == 1
        assert pow(ctx.psi, 256, PRIME) != 1

    def test_roundtrip(self, ctx):
        rng = np.random.default_rng(1)
        a = rng.integers(0, PRIME, 256, dtype=np.int64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_roundtrip_multi_limb(self, ctx):
        rng = np.random.default_rng(2)
        a = rng.integers(0, PRIME, (5, 256), dtype=np.int64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_linearity(self, ctx):
        rng = np.random.default_rng(3)
        a = rng.integers(0, PRIME, 256, dtype=np.int64)
        b = rng.integers(0, PRIME, 256, dtype=np.int64)
        lhs = ctx.forward((a + b) % PRIME)
        rhs = (ctx.forward(a) + ctx.forward(b)) % PRIME
        assert np.array_equal(lhs, rhs)

    def test_wrong_length_rejected(self, ctx):
        with pytest.raises(ParameterError):
            ctx.forward(np.zeros(128, dtype=np.int64))

    def test_constant_transforms_to_constant(self, ctx):
        a = np.zeros(256, dtype=np.int64)
        a[0] = 42
        assert np.all(ctx.forward(a) == 42)


class TestNegacyclicMultiplication:
    def test_matches_schoolbook(self, ctx):
        rng = np.random.default_rng(4)
        a = rng.integers(0, PRIME, 256, dtype=np.int64)
        b = rng.integers(0, PRIME, 256, dtype=np.int64)
        via_ntt = ctx.inverse(ctx.forward(a) * ctx.forward(b) % PRIME)
        assert np.array_equal(via_ntt, negacyclic_convolution(a, b, PRIME))

    def test_x_times_xn_minus_1_wraps_negatively(self):
        # X^(N-1) * X = X^N = -1 in the negacyclic ring.
        q = modmath.generate_primes(1, 16, bits=20)[0]
        small = NttContext(16, q)
        a = np.zeros(16, dtype=np.int64)
        b = np.zeros(16, dtype=np.int64)
        a[15] = 1
        b[1] = 1
        prod = small.inverse(small.forward(a) * small.forward(b) % q)
        expect = np.zeros(16, dtype=np.int64)
        expect[0] = q - 1
        assert np.array_equal(prod, expect)

    @given(st.integers(0, 2 ** 32))
    @settings(max_examples=20, deadline=None)
    def test_random_products(self, seed):
        q = modmath.generate_primes(1, 32, bits=24)[0]
        small = NttContext(32, q)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, q, 32, dtype=np.int64)
        b = rng.integers(0, q, 32, dtype=np.int64)
        via_ntt = small.inverse(small.forward(a) * small.forward(b) % q)
        assert np.array_equal(via_ntt, negacyclic_convolution(a, b, q))


class TestTwiddleCache:
    def test_contexts_share_cached_tables(self):
        """Rebuilding a context for the same (degree, q) is a cache hit."""
        clear_twiddle_cache()
        tracer = Tracer()
        old = instrument.get_tracer()
        instrument.set_tracer(tracer)
        try:
            first = NttContext(64, modmath.generate_primes(1, 64)[0])
            second = NttContext(64, first.q)
        finally:
            instrument.set_tracer(old)
        assert tracer.counters["ckks.ntt_tables.miss"] == 1
        assert tracer.counters["ckks.ntt_tables.hit"] == 1
        assert first.psis is second.psis
        assert twiddle_cache_info()["size"] == 1

    def test_distinct_primes_get_distinct_tables(self):
        clear_twiddle_cache()
        q1, q2 = modmath.generate_primes(2, 64)
        tracer = Tracer()
        old = instrument.get_tracer()
        instrument.set_tracer(tracer)
        try:
            NttContext(64, q1)
            NttContext(64, q2)
        finally:
            instrument.set_tracer(old)
        assert tracer.counters["ckks.ntt_tables.miss"] == 2
        assert "ckks.ntt_tables.hit" not in tracer.counters

    def test_cached_tables_are_read_only(self):
        ctx = NttContext(64, modmath.generate_primes(1, 64)[0])
        with pytest.raises(ValueError):
            ctx.psis[0] = 1


class TestInputLayouts:
    """forward/inverse must copy exactly once, never alias the input."""

    def test_non_contiguous_input(self, ctx):
        rng = np.random.default_rng(11)
        wide = rng.integers(0, ctx.q, size=(256, 2), dtype=np.int64)
        column = wide[:, 0]
        assert not column.flags.c_contiguous
        assert np.array_equal(ctx.forward(column),
                              ctx.forward(column.copy()))

    def test_input_not_mutated(self, ctx):
        rng = np.random.default_rng(12)
        a = rng.integers(0, ctx.q, 256, dtype=np.int64)
        saved = a.copy()
        out = ctx.forward(a)
        assert np.array_equal(a, saved)
        assert out is not a
        roundtrip = ctx.inverse(out)
        assert np.array_equal(out, ctx.forward(a))    # out not aliased
        assert np.array_equal(roundtrip, a)

    def test_non_int64_input_accepted(self, ctx):
        small = np.arange(256, dtype=np.int32)
        assert np.array_equal(ctx.forward(small),
                              ctx.forward(small.astype(np.int64)))
