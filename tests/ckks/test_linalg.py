"""Tests for encrypted linear algebra."""

import numpy as np
import pytest

from repro.ckks.evaluator import make_context
from repro.ckks.linalg import (EncryptedLinalg, embed_operator,
                               rotations_for_block_sum)
from repro.errors import ParameterError
from repro.params import toy_params

BLOCK = 8


@pytest.fixture(scope="module")
def ctx():
    params = toy_params(degree=2 ** 9, level_count=7, aux_count=3)
    rotations = rotations_for_block_sum(BLOCK)
    rotations += [(-c) % params.slot_count for c in (1, 2, 4)]
    return make_context(params, rotations=sorted(set(rotations)))


@pytest.fixture()
def la(ctx):
    return EncryptedLinalg(ctx)


def _vec(rng, ctx):
    return rng.normal(size=ctx.params.slot_count)


class TestHelpers:
    def test_rotations_for_block_sum(self):
        assert rotations_for_block_sum(8) == [1, 2, 4]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            rotations_for_block_sum(6)

    def test_embed_operator_tiles(self):
        m = np.arange(4).reshape(2, 2) + 1.0
        out = embed_operator(m, 8)
        assert np.allclose(out[:2, :2], m)
        assert np.allclose(out[2:4, 2:4], m)
        assert np.allclose(out[0, 2:], 0)

    def test_embed_operator_corner_only(self):
        m = np.ones((2, 3))
        out = embed_operator(m, 8, replicate=False)
        assert np.allclose(out[:2, :3], 1.0)
        assert out.sum() == 6

    def test_embed_too_large_rejected(self):
        with pytest.raises(ParameterError):
            embed_operator(np.ones((16, 16)), 8)


class TestBlockOps:
    def test_mask(self, ctx, la):
        rng = np.random.default_rng(0)
        u = _vec(rng, ctx)
        ct = la.mask(ctx.encrypt_message(u), range(0, ctx.params.slot_count,
                                                   BLOCK))
        got = ctx.decrypt_message(ct).real
        assert np.abs(got[::BLOCK] - u[::BLOCK]).max() < 1e-3
        mask_out = np.delete(got.reshape(-1, BLOCK), 0, axis=1)
        assert np.abs(mask_out).max() < 1e-3

    def test_block_sum(self, ctx, la):
        rng = np.random.default_rng(1)
        u = _vec(rng, ctx)
        ct = la.block_sum(ctx.encrypt_message(u), BLOCK)
        got = ctx.decrypt_message(ct).real
        expect = u.reshape(-1, BLOCK).sum(axis=1)
        assert np.abs(got[::BLOCK] - expect).max() < 1e-3

    def test_replicate(self, ctx, la):
        rng = np.random.default_rng(2)
        leads = np.zeros(ctx.params.slot_count)
        leads[::BLOCK] = rng.normal(size=ctx.params.slot_count // BLOCK)
        ct = la.replicate(ctx.encrypt_message(leads), BLOCK)
        got = ctx.decrypt_message(ct).real
        expect = np.repeat(leads[::BLOCK], BLOCK)
        assert np.abs(got - expect).max() < 1e-3


class TestProducts:
    def test_inner_product_per_block(self, ctx, la):
        rng = np.random.default_rng(3)
        u, v = _vec(rng, ctx), _vec(rng, ctx)
        ct = la.inner_product(ctx.encrypt_message(u),
                              ctx.encrypt_message(v), block=BLOCK)
        got = ctx.decrypt_message(ct).real
        expect = (u * v).reshape(-1, BLOCK).sum(axis=1)
        assert np.abs(got[::BLOCK] - expect).max() < 5e-3
        off_lead = np.delete(got.reshape(-1, BLOCK), 0, axis=1)
        assert np.abs(off_lead).max() < 5e-3

    def test_plain_inner_product_tiled_weights(self, ctx, la):
        rng = np.random.default_rng(4)
        u = _vec(rng, ctx)
        w = rng.normal(size=BLOCK)
        ct = la.plain_inner_product(ctx.encrypt_message(u), w, block=BLOCK)
        got = ctx.decrypt_message(ct).real
        expect = (u.reshape(-1, BLOCK) * w).sum(axis=1)
        assert np.abs(got[::BLOCK] - expect).max() < 5e-3

    def test_plain_inner_product_bad_weights(self, ctx, la):
        rng = np.random.default_rng(5)
        ct = ctx.encrypt_message(_vec(rng, ctx))
        with pytest.raises(ParameterError):
            la.plain_inner_product(ct, np.ones(3), block=BLOCK)

    def test_matvec_small_operator(self, ctx, la):
        rng = np.random.default_rng(6)
        operator = 0.3 * rng.normal(size=(4, 4))
        matrix = embed_operator(operator, ctx.params.slot_count)
        needed = la.required_matvec_rotations(matrix)
        from repro.ckks.keys import KeyGenerator
        keygen = KeyGenerator(ctx.params, seed=2025)
        for r in needed:
            if r not in ctx.keys.rotations:
                ctx.keys.rotations[r] = keygen.rotation_key(
                    ctx.keys.secret, r)
        u = np.zeros(ctx.params.slot_count)
        u[:4] = rng.normal(size=4)
        got = ctx.decrypt_message(
            la.matvec(matrix, ctx.encrypt_message(u))).real
        assert np.abs(got[:4] - operator @ u[:4]).max() < 5e-3
