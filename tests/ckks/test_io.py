"""Serialization round-trip tests."""

import numpy as np
import pytest

from repro.ckks import io as ckks_io
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.errors import ParameterError
from repro.params import toy_params


@pytest.fixture(scope="module")
def ctx():
    from repro.ckks.evaluator import make_context
    return make_context(toy_params(degree=2 ** 8, level_count=4,
                                   aux_count=2), rotations=[1])


class TestParams:
    def test_roundtrip(self, tmp_path, ctx):
        path = tmp_path / "params.npz"
        ckks_io.save_params(path, ctx.params)
        loaded = ckks_io.load_params(path)
        assert loaded == ctx.params

    def test_wrong_kind_rejected(self, tmp_path, ctx):
        path = tmp_path / "params.npz"
        ckks_io.save_params(path, ctx.params)
        with pytest.raises(ParameterError):
            ckks_io.load_ciphertext(path)


class TestCiphertext:
    def test_roundtrip_decrypts(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.encrypt_message(u)
        path = tmp_path / "ct.npz"
        ckks_io.save_ciphertext(path, ct)
        loaded = ckks_io.load_ciphertext(path)
        assert loaded.scale == ct.scale
        assert np.abs(ctx.decrypt_message(loaded).real - u).max() < 1e-3

    def test_leveled_ciphertext(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.multiply(ctx.encrypt_message(u), ctx.encrypt_message(u))
        path = tmp_path / "ct.npz"
        ckks_io.save_ciphertext(path, ct)
        loaded = ckks_io.load_ciphertext(path)
        assert loaded.level_count == ct.level_count
        assert np.abs(ctx.decrypt_message(loaded).real - u * u).max() < 1e-2

    def test_plaintext_roundtrip(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        pt = ctx.encoder.encode(u)
        path = tmp_path / "pt.npz"
        ckks_io.save_plaintext(path, pt)
        loaded = ckks_io.load_plaintext(path)
        assert np.abs(ctx.encoder.decode(loaded) - u).max() < 1e-4


class TestKeys:
    def test_full_key_material_roundtrip(self, tmp_path, ctx, rng):
        base = tmp_path
        ckks_io.save_secret_key(base / "sk.npz", ctx.keys.secret)
        ckks_io.save_public_key(base / "pk.npz", ctx.keys.public)
        ckks_io.save_evaluation_key(base / "relin.npz", ctx.keys.relin)
        ckks_io.save_evaluation_key(base / "rot1.npz",
                                    ctx.keys.rotations[1])

        from repro.ckks.keys import KeySet
        restored = KeySet(
            secret=ckks_io.load_secret_key(base / "sk.npz"),
            public=ckks_io.load_public_key(base / "pk.npz"),
            relin=ckks_io.load_evaluation_key(base / "relin.npz"),
            rotations={1: ckks_io.load_evaluation_key(base / "rot1.npz")})
        fresh_ctx = CkksEvaluator(ctx.params, restored)

        u = rng.normal(size=ctx.params.slot_count)
        ct = fresh_ctx.encrypt_message(u)
        sq = fresh_ctx.multiply(ct, ct)
        rot = fresh_ctx.rotate(ct, 1)
        assert np.abs(fresh_ctx.decrypt_message(sq).real - u * u
                      ).max() < 1e-2
        assert np.abs(fresh_ctx.decrypt_message(rot).real
                      - np.roll(u, -1)).max() < 1e-2

    def test_cross_process_decryption(self, tmp_path, ctx, rng):
        """Encrypt here, 'send' the ciphertext + secret, decrypt there."""
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.encrypt_message(u)
        ckks_io.save_ciphertext(tmp_path / "ct.npz", ct)
        ckks_io.save_secret_key(tmp_path / "sk.npz", ctx.keys.secret)
        ckks_io.save_params(tmp_path / "params.npz", ctx.params)

        params = ckks_io.load_params(tmp_path / "params.npz")
        secret = ckks_io.load_secret_key(tmp_path / "sk.npz")
        keygen = KeyGenerator(params, seed=999)
        from repro.ckks.keys import KeySet
        receiver = CkksEvaluator(
            params, KeySet(secret=secret, public=keygen.public_key(secret)))
        loaded = ckks_io.load_ciphertext(tmp_path / "ct.npz")
        assert np.abs(receiver.decrypt_message(loaded).real - u
                      ).max() < 1e-3
