"""Serialization round-trip tests, plus damaged-archive handling."""

import numpy as np
import pytest

from repro.ckks import io as ckks_io
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.errors import ParameterError, SerializationError
from repro.params import toy_params


@pytest.fixture(scope="module")
def ctx():
    from repro.ckks.evaluator import make_context
    return make_context(toy_params(degree=2 ** 8, level_count=4,
                                   aux_count=2), rotations=[1])


class TestParams:
    def test_roundtrip(self, tmp_path, ctx):
        path = tmp_path / "params.npz"
        ckks_io.save_params(path, ctx.params)
        loaded = ckks_io.load_params(path)
        assert loaded == ctx.params

    def test_wrong_kind_rejected(self, tmp_path, ctx):
        path = tmp_path / "params.npz"
        ckks_io.save_params(path, ctx.params)
        with pytest.raises(ParameterError):
            ckks_io.load_ciphertext(path)


class TestCiphertext:
    def test_roundtrip_decrypts(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.encrypt_message(u)
        path = tmp_path / "ct.npz"
        ckks_io.save_ciphertext(path, ct)
        loaded = ckks_io.load_ciphertext(path)
        assert loaded.scale == ct.scale
        assert np.abs(ctx.decrypt_message(loaded).real - u).max() < 1e-3

    def test_leveled_ciphertext(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.multiply(ctx.encrypt_message(u), ctx.encrypt_message(u))
        path = tmp_path / "ct.npz"
        ckks_io.save_ciphertext(path, ct)
        loaded = ckks_io.load_ciphertext(path)
        assert loaded.level_count == ct.level_count
        assert np.abs(ctx.decrypt_message(loaded).real - u * u).max() < 1e-2

    def test_plaintext_roundtrip(self, tmp_path, ctx, rng):
        u = rng.normal(size=ctx.params.slot_count)
        pt = ctx.encoder.encode(u)
        path = tmp_path / "pt.npz"
        ckks_io.save_plaintext(path, pt)
        loaded = ckks_io.load_plaintext(path)
        assert np.abs(ctx.encoder.decode(loaded) - u).max() < 1e-4


class TestKeys:
    def test_full_key_material_roundtrip(self, tmp_path, ctx, rng):
        base = tmp_path
        ckks_io.save_secret_key(base / "sk.npz", ctx.keys.secret)
        ckks_io.save_public_key(base / "pk.npz", ctx.keys.public)
        ckks_io.save_evaluation_key(base / "relin.npz", ctx.keys.relin)
        ckks_io.save_evaluation_key(base / "rot1.npz",
                                    ctx.keys.rotations[1])

        from repro.ckks.keys import KeySet
        restored = KeySet(
            secret=ckks_io.load_secret_key(base / "sk.npz"),
            public=ckks_io.load_public_key(base / "pk.npz"),
            relin=ckks_io.load_evaluation_key(base / "relin.npz"),
            rotations={1: ckks_io.load_evaluation_key(base / "rot1.npz")})
        fresh_ctx = CkksEvaluator(ctx.params, restored)

        u = rng.normal(size=ctx.params.slot_count)
        ct = fresh_ctx.encrypt_message(u)
        sq = fresh_ctx.multiply(ct, ct)
        rot = fresh_ctx.rotate(ct, 1)
        assert np.abs(fresh_ctx.decrypt_message(sq).real - u * u
                      ).max() < 1e-2
        assert np.abs(fresh_ctx.decrypt_message(rot).real
                      - np.roll(u, -1)).max() < 1e-2

    def test_cross_process_decryption(self, tmp_path, ctx, rng):
        """Encrypt here, 'send' the ciphertext + secret, decrypt there."""
        u = rng.normal(size=ctx.params.slot_count)
        ct = ctx.encrypt_message(u)
        ckks_io.save_ciphertext(tmp_path / "ct.npz", ct)
        ckks_io.save_secret_key(tmp_path / "sk.npz", ctx.keys.secret)
        ckks_io.save_params(tmp_path / "params.npz", ctx.params)

        params = ckks_io.load_params(tmp_path / "params.npz")
        secret = ckks_io.load_secret_key(tmp_path / "sk.npz")
        keygen = KeyGenerator(params, seed=999)
        from repro.ckks.keys import KeySet
        receiver = CkksEvaluator(
            params, KeySet(secret=secret, public=keygen.public_key(secret)))
        loaded = ckks_io.load_ciphertext(tmp_path / "ct.npz")
        assert np.abs(receiver.decrypt_message(loaded).real - u
                      ).max() < 1e-3


LOADERS = [
    ("save_params", "load_params", "params"),
    ("save_ciphertext", "load_ciphertext", "ciphertext"),
    ("save_secret_key", "load_secret_key", "secret key"),
]


def _payload(ctx, saver, rng):
    if saver == "save_params":
        return ctx.params
    if saver == "save_ciphertext":
        return ctx.encrypt_message(rng.normal(size=ctx.params.slot_count))
    return ctx.keys.secret


def _assert_clean_error(excinfo, path):
    message = str(excinfo.value)
    assert "\n" not in message, "error must be one line"
    assert str(path) in message
    assert "corrupted or truncated" in message


class TestCorruption:
    """Damaged archives must raise one-line SerializationError, never a
    raw zipfile/zlib/numpy traceback."""

    @pytest.mark.parametrize("saver,loader,_kind", LOADERS)
    def test_truncated(self, tmp_path, ctx, rng, saver, loader, _kind):
        path = tmp_path / "obj.npz"
        getattr(ckks_io, saver)(path, _payload(ctx, saver, rng))
        blob = path.read_bytes()
        for cut in (len(blob) // 2, len(blob) - 7, 10):
            path.write_bytes(blob[:cut])
            with pytest.raises(SerializationError) as excinfo:
                getattr(ckks_io, loader)(path)
            _assert_clean_error(excinfo, path)

    @pytest.mark.parametrize("saver,loader,_kind", LOADERS)
    def test_bit_flipped(self, tmp_path, ctx, rng, saver, loader, _kind):
        path = tmp_path / "obj.npz"
        getattr(ckks_io, saver)(path, _payload(ctx, saver, rng))
        blob = bytearray(path.read_bytes())
        flip_rng = np.random.default_rng(99)
        hits = 0
        for _ in range(24):
            damaged = bytearray(blob)
            pos = int(flip_rng.integers(0, len(damaged)))
            damaged[pos] ^= 1 << int(flip_rng.integers(0, 8))
            path.write_bytes(bytes(damaged))
            try:
                getattr(ckks_io, loader)(path)
            except SerializationError as exc:
                assert "\n" not in str(exc)
                hits += 1
            except ParameterError:
                hits += 1      # flip landed in the meta JSON: also clean
        # Most single-bit flips damage the zip/deflate structure; the
        # few that land in padding can legitimately load.
        assert hits > 0

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(SerializationError) as excinfo:
            ckks_io.load_params(path)
        _assert_clean_error(excinfo, path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(SerializationError) as excinfo:
            ckks_io.load_ciphertext(path)
        _assert_clean_error(excinfo, path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ckks_io.load_params(tmp_path / "nope.npz")

    def test_missing_member(self, tmp_path, ctx):
        """An archive missing an expected array is corruption, not a
        KeyError leak."""
        path = tmp_path / "partial.npz"
        np.savez(path, meta=ckks_io._meta("params"))
        with pytest.raises((SerializationError, ParameterError)) as excinfo:
            ckks_io.load_params(path)
        assert "\n" not in str(excinfo.value)
