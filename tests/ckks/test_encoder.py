"""Tests for canonical-embedding encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.encoder import CkksEncoder, embed, unembed
from repro.errors import ParameterError


class TestEmbedding:
    def test_embed_unembed_identity(self):
        rng = np.random.default_rng(0)
        degree = 128
        slots = rng.normal(size=64) + 1j * rng.normal(size=64)
        coeffs = unembed(slots, degree)
        back = embed(coeffs, degree)
        assert np.allclose(back, slots, atol=1e-10)

    def test_constant_polynomial_embeds_to_constant(self):
        coeffs = np.zeros(128)
        coeffs[0] = 3.5
        assert np.allclose(embed(coeffs, 128), 3.5)

    def test_monomial_x_half_n_embeds_to_i(self):
        degree = 128
        coeffs = np.zeros(degree)
        coeffs[degree // 2] = 1.0
        assert np.allclose(embed(coeffs, degree), 1j, atol=1e-12)

    def test_unembed_produces_real_coeffs(self):
        rng = np.random.default_rng(1)
        slots = rng.normal(size=64) + 1j * rng.normal(size=64)
        coeffs = unembed(slots, 128)
        assert coeffs.dtype == np.float64

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_embedding_is_linear(self, seed):
        rng = np.random.default_rng(seed)
        u = rng.normal(size=32) + 1j * rng.normal(size=32)
        v = rng.normal(size=32) + 1j * rng.normal(size=32)
        lhs = unembed(u + 2 * v, 64)
        rhs = unembed(u, 64) + 2 * unembed(v, 64)
        assert np.allclose(lhs, rhs, atol=1e-10)


class TestEncoder:
    def test_roundtrip(self, small_context, message):
        enc = small_context.encoder
        decoded = enc.decode(enc.encode(message))
        assert np.abs(decoded - message).max() < 1e-5

    def test_short_message_zero_padded(self, small_context):
        enc = small_context.encoder
        pt = enc.encode([1.0, 2.0])
        decoded = enc.decode(pt)
        assert np.allclose(decoded[:2], [1.0, 2.0], atol=1e-5)
        assert np.abs(decoded[2:]).max() < 1e-5

    def test_oversized_message_rejected(self, small_context, small_params):
        enc = small_context.encoder
        with pytest.raises(ParameterError):
            enc.encode(np.ones(small_params.slot_count + 1))

    def test_custom_scale(self, small_context, message):
        enc = small_context.encoder
        pt = enc.encode(message, scale=2.0 ** 30)
        assert pt.scale == 2.0 ** 30
        decoded = enc.decode(pt)
        assert np.abs(decoded - message).max() < 1e-5

    def test_rounding_error_scales_inversely_with_delta(self, small_context,
                                                        message):
        enc = small_context.encoder
        coarse = enc.decode(enc.encode(message, scale=2.0 ** 16))
        fine = enc.decode(enc.encode(message, scale=2.0 ** 27))
        assert np.abs(fine - message).max() < np.abs(coarse - message).max()
