"""Shoup/Harvey lazy-reduction kernels vs. the exact ``%`` oracle.

The lazy numeric layer (``repro.ckks.modmath`` Shoup kernels and the
Harvey butterflies inside ``BatchNttContext``) must be *bit-identical*
to the divide-based reference for every limb — including the 31-bit
primes that dispatch to the strict fallback — because all pinned
digests and baseline counters assume canonical ``[0, q)`` residues.
These properties pin the kernels against big-int arithmetic and the
batched NTT against the per-limb ``NttContext`` oracle across random
NTT-friendly primes spanning 20–31 bits and degrees 16–256.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import instrument, modmath
from repro.ckks.ntt import BatchNttContext, NttContext
from repro.ckks.rns import RnsPolynomial, modulus_column
from repro.obs.tracer import Tracer

DEGREES = (16, 32, 64, 128, 256)

#: Spans the dispatch boundary: 20–30-bit primes stay below 2^30 and
#: take the lazy Shoup path; 31-bit primes are ≥ 2^30 and fall back to
#: the exact ``%`` kernels.
PRIME_BITS = (20, 22, 24, 26, 28, 29, 30, 31)


def ntt_prime(degree: int, bits: int) -> int:
    return modmath.generate_primes(1, degree, bits=bits)[0]


def random_limbs(basis, degree, rng, lead=()):
    limbs = np.empty(lead + (len(basis), degree), dtype=np.int64)
    for i, q in enumerate(basis):
        limbs[..., i, :] = rng.integers(0, q, size=lead + (degree,),
                                        dtype=np.int64)
    return limbs


def reference_forward(basis, coeffs):
    out = np.empty_like(coeffs)
    for i, q in enumerate(basis):
        out[..., i, :] = NttContext(coeffs.shape[-1], q).forward(
            coeffs[..., i, :])
    return out


def reference_inverse(basis, values):
    out = np.empty_like(values)
    for i, q in enumerate(basis):
        out[..., i, :] = NttContext(values.shape[-1], q).inverse(
            values[..., i, :])
    return out


class TestShoupKernels:
    @given(st.sampled_from((20, 22, 24, 26, 28, 29)), st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_shoup_mul_matches_bigint_oracle(self, bits, seed):
        """Lazy product lands in [0, 2q) and is ≡ x·s (mod q)."""
        q = ntt_prime(64, bits)
        assert modmath.supports_shoup(q)
        rng = np.random.default_rng(seed)
        # x may be any lazy intermediate in [0, 4q) — the widest range
        # a Harvey butterfly ever feeds a Shoup multiply.
        x = rng.integers(0, 4 * q, size=64, dtype=np.int64)
        s = int(rng.integers(0, q))
        s_shoup = modmath.shoup_precompute(s, q)
        out = modmath.shoup_mul(x, s, s_shoup, q)
        assert np.all(out >= 0) and np.all(out < 2 * q)
        expected = (x.astype(object) * s) % q
        assert np.array_equal(out % q, expected.astype(np.int64))

    @given(st.integers(0, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_shoup_precompute_array_matches_scalar(self, seed):
        q = ntt_prime(64, 28)
        rng = np.random.default_rng(seed)
        s = rng.integers(0, q, size=(1, 64), dtype=np.int64)
        dual = modmath.shoup_precompute(s, np.int64(q))
        expected = [(int(v) << modmath.SHOUP_SHIFT) // q for v in s[0]]
        assert dual.dtype == np.uint64
        assert list(dual[0].astype(int)) == expected

    @given(st.integers(0, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_lazy_add_sub_reduce_roundtrip(self, seed):
        """Deferred add/sub stay in [0, 2q); reduce_final canonicalizes."""
        q = ntt_prime(64, 28)
        two_q = np.int64(2 * q)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2 * q, size=64, dtype=np.int64)
        b = rng.integers(0, 2 * q, size=64, dtype=np.int64)
        out = np.empty(64, dtype=np.int64)
        mask = np.empty(64, dtype=bool)
        modmath.lazy_add_into(a, b, two_q, out, mask)
        assert np.all((out >= 0) & (out < 2 * q))
        assert np.array_equal(modmath.reduce_final(out, q) % q,
                              (a + b) % q)
        modmath.lazy_sub_into(a, b, two_q, out, mask)
        assert np.all((out >= 0) & (out < 2 * q))
        assert np.array_equal(modmath.reduce_final(out, q) % q,
                              (a - b) % q)

    def test_reduce_final_into_matches_pure(self):
        q = ntt_prime(16, 20)
        a = np.arange(0, 2 * q, q // 7, dtype=np.int64)
        mask = np.empty(a.shape, dtype=bool)
        expected = modmath.reduce_final(a, q)
        assert np.array_equal(
            modmath.reduce_final_into(a.copy(), q, mask), expected)


class TestDispatchBoundary:
    def test_supports_shoup_is_strict_below_2_30(self):
        assert modmath.supports_shoup(modmath.SHOUP_MAX_PRIME - 1)
        assert not modmath.supports_shoup(modmath.SHOUP_MAX_PRIME)
        assert not modmath.supports_shoup(modmath.SHOUP_MAX_PRIME + 1)

    def test_segments_partition_mixed_basis(self):
        basis = tuple(ntt_prime(64, b) for b in (20, 24, 31, 30, 28))
        segments = modmath.shoup_segments(basis)
        covered = []
        for lo, hi, lazy in segments:
            for i in range(lo, hi):
                covered.append(i)
                assert modmath.supports_shoup(basis[i]) == lazy
        assert covered == list(range(len(basis)))

    def test_segments_single_lazy_run_for_small_primes(self):
        basis = tuple(ntt_prime(64, 28) for _ in range(3))
        assert modmath.shoup_segments(basis) == ((0, 3, True),)

    @given(st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_strict_fallback_rows_stay_exact(self, seed):
        """31-bit rows (≥ 2^30) go through the verbatim % path."""
        q = ntt_prime(64, 31)
        assert not modmath.supports_shoup(q)
        basis = (ntt_prime(64, 28), q)
        rng = np.random.default_rng(seed)
        x = random_limbs(basis, 64, rng)
        s = random_limbs(basis, 64, rng)
        q_col = modulus_column(basis)
        dual = modmath.shoup_precompute(s, q_col)
        out = np.empty_like(x)
        modmath.shoup_mod_mul_into(x, s, dual, q_col, basis, out)
        assert np.array_equal(out, modmath.mod_mul(x, s, q_col))


class TestShoupModMul:
    @given(st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_matches_mod_mul_on_mixed_basis(self, seed):
        basis = tuple(ntt_prime(128, b) for b in (20, 24, 28, 31, 30, 26))
        rng = np.random.default_rng(seed)
        x = random_limbs(basis, 128, rng)
        s = random_limbs(basis, 128, rng)
        q_col = modulus_column(basis)
        dual = modmath.shoup_precompute(s, q_col)
        out = np.empty_like(x)
        modmath.shoup_mod_mul_into(x, s, dual, q_col, basis, out)
        assert np.array_equal(out, modmath.mod_mul(x, s, q_col))

    def test_counts_dispatch_per_limb_row(self):
        basis = tuple(ntt_prime(64, b) for b in (28, 28, 31, 30))
        rng = np.random.default_rng(3)
        x = random_limbs(basis, 64, rng)
        s = random_limbs(basis, 64, rng)
        q_col = modulus_column(basis)
        dual = modmath.shoup_precompute(s, q_col)
        out = np.empty_like(x)
        tracer = Tracer()
        old = instrument.get_tracer()
        instrument.set_tracer(tracer)
        try:
            modmath.shoup_mod_mul_into(x, s, dual, q_col, basis, out)
        finally:
            instrument.set_tracer(old)
        # (28, 28, 31, 30): the 30-bit prime is still < 2^30, so only
        # the 31-bit row takes the fallback.
        assert tracer.counters["ckks.modmath.shoup"] == 3
        assert tracer.counters["ckks.modmath.strict_fallback"] == 1


class TestLazyNttBitIdentity:
    @given(st.sampled_from(DEGREES), st.sampled_from(PRIME_BITS),
           st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_single_prime_forward_inverse(self, degree, bits, seed):
        """Harvey batched passes ≡ the %-based per-limb oracle."""
        basis = (ntt_prime(degree, bits),)
        rng = np.random.default_rng(seed)
        a = random_limbs(basis, degree, rng)
        ctx = BatchNttContext(degree, basis)
        fwd = ctx.forward(a)
        assert np.array_equal(fwd, reference_forward(basis, a))
        assert np.array_equal(ctx.inverse(fwd), a)
        assert np.array_equal(ctx.inverse(fwd),
                              reference_inverse(basis, fwd))

    @given(st.sampled_from((16, 64, 256)), st.integers(0, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_mixed_basis_spanning_dispatch_boundary(self, degree, seed):
        basis = tuple(ntt_prime(degree, b) for b in (20, 28, 29, 30, 31))
        rng = np.random.default_rng(seed)
        a = random_limbs(basis, degree, rng, lead=(2,))
        ctx = BatchNttContext(degree, basis)
        fwd = ctx.forward(a)
        assert np.array_equal(fwd, reference_forward(basis, a))
        assert np.array_equal(ctx.inverse(fwd), a)

    @given(st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_lazy_scope_off_is_identical(self, seed):
        """Disabling lazy kernels must not change a single bit."""
        basis = tuple(ntt_prime(64, b) for b in (20, 28, 31))
        rng = np.random.default_rng(seed)
        a = random_limbs(basis, 64, rng)
        ctx = BatchNttContext(64, basis)
        lazy_fwd = ctx.forward(a)
        with modmath.lazy_scope(False):
            strict_fwd = ctx.forward(a)
            strict_inv = ctx.inverse(lazy_fwd)
        assert np.array_equal(lazy_fwd, strict_fwd)
        assert np.array_equal(strict_inv, ctx.inverse(lazy_fwd))
        assert np.array_equal(strict_inv, a)

    def test_lazy_scope_restores_on_exception(self):
        assert modmath.lazy_enabled()
        with pytest.raises(RuntimeError):
            with modmath.lazy_scope(False):
                assert not modmath.lazy_enabled()
                raise RuntimeError("boom")
        assert modmath.lazy_enabled()


class TestRnsShoupDuals:
    BASIS = tuple(ntt_prime(64, b) for b in (28, 26, 31, 30))

    def _random_poly(self, seed):
        rng = np.random.default_rng(seed)
        coeffs = random_limbs(self.BASIS, 64, rng)
        return RnsPolynomial(coeffs=coeffs, basis=self.BASIS, is_ntt=True)

    def test_ensure_shoup_mul_is_bit_identical(self):
        a = self._random_poly(0)
        b = self._random_poly(1)
        plain = (a * b).coeffs
        b.ensure_shoup()
        assert b.shoup is not None
        assert np.array_equal((a * b).coeffs, plain)
        assert np.array_equal((b * a).coeffs, plain)

    def test_ensure_shoup_is_idempotent(self):
        a = self._random_poly(2)
        a.ensure_shoup()
        dual = a.shoup
        assert a.ensure_shoup() is a
        assert a.shoup is dual

    def test_restrict_propagates_dual(self):
        a = self._random_poly(3)
        assert a.restrict(self.BASIS[:2]).shoup is None
        a.ensure_shoup()
        sub = a.restrict(self.BASIS[:2])
        assert sub.shoup is not None
        assert np.array_equal(sub.shoup, a.shoup[:2])

    def test_mul_with_lazy_disabled_matches(self):
        a = self._random_poly(4)
        b = self._random_poly(5)
        b.ensure_shoup()
        lazy = (a * b).coeffs
        with modmath.lazy_scope(False):
            strict = (a * b).coeffs
        assert np.array_equal(lazy, strict)
