"""Tests for homomorphic linear transforms — the paper's §III-B/§V-B.

Key properties: all four strategies (baseline / hoisting / MinKS / BSGS)
produce the same result up to noise, MinKS needs only one evk, and the
hoisting evk count matches the diagonal count.
"""

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator
from repro.ckks.linear_transform import (LinearTransform,
                                         generate_hoisting_keys,
                                         matrix_diagonals)
from repro.errors import EvalKeyError, ParameterError


def _sparse_matrix(n, shifts, seed=0):
    rng = np.random.default_rng(seed)
    m = np.zeros((n, n), dtype=np.complex128)
    rows = np.arange(n)
    for s in shifts:
        m[rows, (rows + s) % n] = 0.2 * (
            rng.normal(size=n) + 1j * rng.normal(size=n))
    return m


SHIFTS = [0, 1, 2, 3, 5, 8]


@pytest.fixture(scope="module")
def transform_setup(small_params):
    from repro.ckks.evaluator import make_context
    n = small_params.slot_count
    matrix = _sparse_matrix(n, SHIFTS, seed=42)
    ev = make_context(small_params, rotations=list(range(1, 9)))
    lt = LinearTransform.from_matrix(ev, matrix)
    keygen = KeyGenerator(small_params, seed=2025)
    ev.keys.hoisting_rotations = generate_hoisting_keys(
        keygen, ev.keys.secret, lt.required_rotations("hoisting"))
    for r in lt.required_rotations("bsgs"):
        if r not in ev.keys.rotations:
            ev.keys.rotations[r] = keygen.rotation_key(ev.keys.secret, r)
    return ev, lt, matrix


class TestDiagonalExtraction:
    def test_identity_matrix_has_single_diagonal(self):
        diags = matrix_diagonals(np.eye(8))
        assert set(diags) == {0}
        assert np.allclose(diags[0], 1.0)

    def test_shift_matrix(self):
        m = np.roll(np.eye(8), 1, axis=1)  # y = u << 1
        diags = matrix_diagonals(m)
        assert set(diags) == {1}

    def test_sparse_matrix_diagonals(self):
        m = _sparse_matrix(16, [0, 3, 7])
        assert set(matrix_diagonals(m)) == {0, 3, 7}

    def test_nonsquare_rejected(self):
        with pytest.raises(ParameterError):
            matrix_diagonals(np.ones((4, 8)))

    def test_reconstruction(self):
        m = _sparse_matrix(16, [0, 2, 5], seed=3)
        diags = matrix_diagonals(m)
        rows = np.arange(16)
        rebuilt = np.zeros_like(m)
        for s, d in diags.items():
            rebuilt[rows, (rows + s) % 16] = d
        assert np.allclose(rebuilt, m)


class TestKeyRequirements:
    def test_minks_needs_single_key(self, transform_setup):
        _, lt, _ = transform_setup
        assert lt.required_rotations("minks") == [1]

    def test_baseline_needs_all_shifts(self, transform_setup):
        _, lt, _ = transform_setup
        assert lt.required_rotations("baseline") == [1, 2, 3, 5, 8]

    def test_bsgs_needs_fewer_than_baseline(self, transform_setup):
        _, lt, _ = transform_setup
        assert len(lt.required_rotations("bsgs")) <= len(
            lt.required_rotations("baseline"))

    def test_unknown_method_rejected(self, transform_setup):
        _, lt, _ = transform_setup
        with pytest.raises(ParameterError):
            lt.required_rotations("magic")


class TestStrategiesAgree:
    @pytest.mark.parametrize("method",
                             ["baseline", "minks", "bsgs", "hoisting"])
    def test_matches_cleartext(self, transform_setup, rng, method):
        ev, lt, matrix = transform_setup
        n = ev.params.slot_count
        u = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = ev.encrypt_message(u)
        out = ev.decrypt_message(lt.apply(ct, method))
        assert np.abs(out - matrix @ u).max() < 5e-3

    def test_strategies_agree_pairwise(self, transform_setup, rng):
        ev, lt, _ = transform_setup
        n = ev.params.slot_count
        u = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = ev.encrypt_message(u)
        results = {m: ev.decrypt_message(lt.apply(ct, m))
                   for m in ("baseline", "minks", "bsgs", "hoisting")}
        base = results.pop("baseline")
        for other in results.values():
            assert np.abs(base - other).max() < 5e-3

    def test_all_consume_one_level(self, transform_setup, rng):
        ev, lt, _ = transform_setup
        n = ev.params.slot_count
        u = rng.normal(size=n)
        ct = ev.encrypt_message(u)
        for method in ("baseline", "minks", "hoisting"):
            out = lt.apply(ct, method)
            assert out.level_count == ct.level_count - 1

    def test_hoisting_without_keys_raises(self, small_params, rng):
        from repro.ckks.evaluator import make_context
        ev = make_context(small_params, rotations=[1, 2])
        lt = LinearTransform(ev, {1: np.ones(small_params.slot_count)})
        ct = ev.encrypt_message(rng.normal(size=small_params.slot_count))
        with pytest.raises(EvalKeyError):
            lt.apply(ct, "hoisting")

    def test_wrong_diagonal_length_rejected(self, transform_setup):
        ev, _, _ = transform_setup
        with pytest.raises(ParameterError):
            LinearTransform(ev, {0: np.ones(3)})


class TestKeyGenerationApi:
    def test_make_context_with_hoisting_keys(self, small_params, rng):
        from repro.ckks.evaluator import make_context
        ev = make_context(small_params, rotations=[1, 2],
                          hoisting_rotations=[1, 2])
        lt = LinearTransform(ev, {
            0: np.ones(small_params.slot_count),
            1: 0.5 * np.ones(small_params.slot_count),
            2: 0.25 * np.ones(small_params.slot_count)})
        u = rng.normal(size=small_params.slot_count)
        ct = ev.encrypt_message(u)
        hoisted = ev.decrypt_message(lt.apply(ct, "hoisting"))
        baseline = ev.decrypt_message(lt.apply(ct, "baseline"))
        assert np.abs(hoisted - baseline).max() < 5e-3
