"""Bounded LRU behavior of the basis-conversion table cache.

A long serve run sweeps many leveled bases; the table cache must stay
capped, evict least-recently-used entries first, and report hits,
misses, and evictions through the engine counters.
"""

from contextlib import contextmanager

import pytest

from repro.ckks import instrument, keyswitch, modmath
from repro.ckks.keyswitch import (_bconv_tables, bconv_cache_info,
                                  clear_bconv_cache)

PRIMES = tuple(modmath.generate_primes(6, 128, bits=20))


@contextmanager
def tracing():
    class _Tracer:
        def __init__(self):
            self.counters = {}

        def count(self, name, value=1.0):
            self.counters[name] = self.counters.get(name, 0.0) + value

    tracer = _Tracer()
    old = instrument.get_tracer()
    instrument.set_tracer(tracer)
    try:
        yield tracer.counters
    finally:
        instrument.set_tracer(old)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_bconv_cache()
    yield
    clear_bconv_cache()


def key_for(i):
    """A distinct (src, dst) basis pair per index."""
    return (PRIMES[i], PRIMES[i + 1]), (PRIMES[i + 2],)


class TestBconvCache:
    def test_miss_then_hit(self):
        src, dst = key_for(0)
        with tracing() as counts:
            first = _bconv_tables(src, dst)
            second = _bconv_tables(src, dst)
        assert counts["ckks.bconv_tables.miss"] == 1
        assert counts["ckks.bconv_tables.hit"] == 1
        assert first is second
        assert bconv_cache_info()["size"] == 1

    def test_size_stays_bounded_and_evicts(self, monkeypatch):
        monkeypatch.setattr(keyswitch, "BCONV_CACHE_SIZE", 2)
        with tracing() as counts:
            for i in range(3):
                _bconv_tables(*key_for(i))
        assert bconv_cache_info()["size"] == 2
        assert counts["ckks.bconv_tables.evicted"] == 1
        # the evicted (oldest) entry is a miss again
        with tracing() as counts:
            _bconv_tables(*key_for(0))
        assert counts.get("ckks.bconv_tables.miss", 0) == 1

    def test_lru_order_spares_recently_touched(self, monkeypatch):
        monkeypatch.setattr(keyswitch, "BCONV_CACHE_SIZE", 2)
        _bconv_tables(*key_for(0))
        _bconv_tables(*key_for(1))
        _bconv_tables(*key_for(0))      # refresh key 0
        _bconv_tables(*key_for(2))      # evicts key 1, not key 0
        with tracing() as counts:
            _bconv_tables(*key_for(0))
            _bconv_tables(*key_for(2))
        assert counts.get("ckks.bconv_tables.hit", 0) == 2
        assert "ckks.bconv_tables.miss" not in counts

    def test_clear_and_info(self):
        _bconv_tables(*key_for(0))
        assert bconv_cache_info()["size"] == 1
        assert bconv_cache_info()["maxsize"] == keyswitch.BCONV_CACHE_SIZE
        clear_bconv_cache()
        assert bconv_cache_info()["size"] == 0
