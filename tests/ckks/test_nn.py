"""Tests for encrypted neural-network inference (§V-C DNN support)."""

import numpy as np
import pytest

from repro.ckks.evaluator import make_context
from repro.ckks.keys import KeyGenerator
from repro.ckks.nn import Activation, DenseLayer, EncryptedMlp
from repro.errors import ParameterError
from repro.params import toy_params

BLOCK = 8


@pytest.fixture(scope="module")
def setup():
    params = toy_params(degree=2 ** 9, level_count=10, aux_count=3)
    ctx = make_context(params)
    rng = np.random.default_rng(7)
    mlp = EncryptedMlp(
        evaluator=ctx,
        layers=[
            DenseLayer(weights=0.4 * rng.normal(size=(6, 4)),
                       bias=0.1 * rng.normal(size=6)),
            Activation(kind="square", degree=2, interval=(-3, 3)),
            DenseLayer(weights=0.3 * rng.normal(size=(2, 6)),
                       bias=0.1 * rng.normal(size=2)),
        ],
        block=BLOCK)
    keygen = KeyGenerator(params, seed=2025)
    for r in mlp.required_rotations():
        if r not in ctx.keys.rotations:
            ctx.keys.rotations[r] = keygen.rotation_key(ctx.keys.secret, r)
    return ctx, mlp, rng


class TestConstruction:
    def test_layer_validation(self):
        with pytest.raises(ParameterError):
            DenseLayer(weights=np.ones((2, 3)), bias=np.ones(3))
        with pytest.raises(ParameterError):
            DenseLayer(weights=np.ones(3), bias=np.ones(1))

    def test_block_must_fit_layers(self, setup):
        ctx, _, rng = setup
        with pytest.raises(ParameterError):
            EncryptedMlp(evaluator=ctx,
                         layers=[DenseLayer(weights=np.ones((16, 16)),
                                            bias=np.zeros(16))],
                         block=8)

    def test_unknown_activation(self):
        with pytest.raises(ParameterError):
            Activation(kind="relu").target()

    def test_depth_accounting(self, setup):
        _, mlp, _ = setup
        # dense(1) + square activation + dense(1)
        assert mlp.depth() >= 3


class TestPacking:
    def test_pack_unpack_roundtrip(self, setup):
        ctx, mlp, rng = setup
        batch = rng.normal(size=(5, 4))
        slots = mlp.pack(batch)
        back = mlp.unpack(slots, samples=5, features=4)
        assert np.allclose(back, batch)

    def test_pack_overflow_rejected(self, setup):
        ctx, mlp, rng = setup
        too_many = ctx.params.slot_count // BLOCK + 1
        with pytest.raises(ParameterError):
            mlp.pack(rng.normal(size=(too_many, 4)))


class TestInference:
    def test_matches_cleartext_forward_pass(self, setup):
        ctx, mlp, rng = setup
        samples = 16
        batch = 0.5 * rng.normal(size=(samples, 4))
        packed = mlp.pack(batch)
        ct = ctx.encrypt_message(packed)
        out = mlp.infer(ct)
        got = mlp.unpack(ctx.decrypt_message(out).real, samples, 2)
        expect = mlp.reference(batch)
        assert np.abs(got - expect).max() < 2e-2

    def test_whole_batch_in_one_ciphertext(self, setup):
        ctx, mlp, rng = setup
        # Different samples produce different outputs from one ct.
        batch = np.zeros((2, 4))
        batch[0] = 0.5
        batch[1] = -0.5
        ct = ctx.encrypt_message(mlp.pack(batch))
        got = mlp.unpack(ctx.decrypt_message(mlp.infer(ct)).real, 2, 2)
        expect = mlp.reference(batch)
        assert np.abs(got - expect).max() < 2e-2
        assert not np.allclose(got[0], got[1])

    def test_tanh_activation_network(self, setup):
        ctx, _, rng = setup
        mlp = EncryptedMlp(
            evaluator=ctx,
            layers=[DenseLayer(weights=0.5 * np.eye(4), bias=np.zeros(4)),
                    Activation(kind="tanh", degree=7, interval=(-2, 2))],
            block=BLOCK)
        keygen = KeyGenerator(ctx.params, seed=2025)
        for r in mlp.required_rotations():
            if r not in ctx.keys.rotations:
                ctx.keys.rotations[r] = keygen.rotation_key(
                    ctx.keys.secret, r)
        batch = rng.uniform(-1.5, 1.5, size=(4, 4))
        ct = ctx.encrypt_message(mlp.pack(batch))
        got = mlp.unpack(ctx.decrypt_message(mlp.infer(ct)).real, 4, 4)
        assert np.abs(got - np.tanh(0.5 * batch)).max() < 2e-2
