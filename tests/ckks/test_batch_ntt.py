"""Batched limb-plane NTT engine vs. the per-limb reference.

The batched path must be *bit-identical* to looping :class:`NttContext`
over the primes — not merely equal up to CKKS noise — because the two
implementations share twiddle tables and perform the same element-wise
operations in the same order.  These tests pin that contract across
random bases, mixed prime widths, and leading axes, and check the
batched transform still realizes negacyclic convolution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import modmath
from repro.ckks.keyswitch import basis_convert
from repro.ckks.ntt import BatchNttContext, NttContext, negacyclic_convolution
from repro.ckks.rns import RnsPolynomial, batch_ntt_context, modulus_column
from repro.errors import ParameterError

DEGREE = 128

#: A deliberately mixed-width basis: 20-, 24-, 28-, and 31-bit primes.
MIXED_BASIS = tuple(
    modmath.generate_primes(1, DEGREE, bits=bits)[0]
    for bits in (20, 24, 28, 31, 30, 26))


def reference_forward(basis, coeffs):
    """Per-limb forward NTT over the trailing (L, N) axes."""
    out = np.empty_like(coeffs)
    for i, q in enumerate(basis):
        out[..., i, :] = NttContext(coeffs.shape[-1], q).forward(
            coeffs[..., i, :])
    return out


def reference_inverse(basis, values):
    out = np.empty_like(values)
    for i, q in enumerate(basis):
        out[..., i, :] = NttContext(values.shape[-1], q).inverse(
            values[..., i, :])
    return out


def random_limbs(basis, degree, rng, lead=()):
    limbs = np.empty(lead + (len(basis), degree), dtype=np.int64)
    for i, q in enumerate(basis):
        limbs[..., i, :] = rng.integers(0, q, size=lead + (degree,),
                                        dtype=np.int64)
    return limbs


class TestBitIdentical:
    def test_forward_matches_reference(self):
        rng = np.random.default_rng(0)
        a = random_limbs(MIXED_BASIS, DEGREE, rng)
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        assert np.array_equal(ctx.forward(a),
                              reference_forward(MIXED_BASIS, a))

    def test_inverse_matches_reference(self):
        rng = np.random.default_rng(1)
        a = random_limbs(MIXED_BASIS, DEGREE, rng)
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        assert np.array_equal(ctx.inverse(a),
                              reference_inverse(MIXED_BASIS, a))

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        a = random_limbs(MIXED_BASIS, DEGREE, rng)
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_leading_axes(self):
        rng = np.random.default_rng(3)
        a = random_limbs(MIXED_BASIS, DEGREE, rng, lead=(3, 2))
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        assert np.array_equal(ctx.forward(a),
                              reference_forward(MIXED_BASIS, a))
        assert np.array_equal(ctx.inverse(a),
                              reference_inverse(MIXED_BASIS, a))

    def test_single_limb_basis(self):
        q = MIXED_BASIS[0]
        rng = np.random.default_rng(4)
        a = rng.integers(0, q, size=(1, DEGREE), dtype=np.int64)
        ctx = BatchNttContext(DEGREE, (q,))
        assert np.array_equal(ctx.forward(a), reference_forward((q,), a))

    @given(st.integers(0, 2 ** 32), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_random_bases_property(self, seed, limb_count):
        rng = np.random.default_rng(seed)
        pool = [modmath.generate_primes(2, 64, bits=bits)
                for bits in (20, 26, 31)]
        primes = sorted({q for sub in pool for q in sub})
        basis = tuple(rng.choice(primes, size=min(limb_count, len(primes)),
                                 replace=False).tolist())
        a = random_limbs(basis, 64, rng)
        ctx = BatchNttContext(64, basis)
        assert np.array_equal(ctx.forward(a), reference_forward(basis, a))
        assert np.array_equal(ctx.inverse(a), reference_inverse(basis, a))

    def test_scratch_reused_across_calls(self):
        rng = np.random.default_rng(5)
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        a = random_limbs(MIXED_BASIS, DEGREE, rng)
        ctx.forward(a)
        scratch_after_one = len(ctx._scratch)
        ctx.forward(a)
        ctx.inverse(a)
        assert len(ctx._scratch) == scratch_after_one == 1

    def test_rejects_wrong_limb_count(self):
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        bad = np.zeros((2, DEGREE), dtype=np.int64)
        with pytest.raises(ParameterError):
            ctx.forward(bad)

    def test_rejects_wrong_degree(self):
        ctx = BatchNttContext(DEGREE, MIXED_BASIS)
        bad = np.zeros((len(MIXED_BASIS), 64), dtype=np.int64)
        with pytest.raises(ParameterError):
            ctx.inverse(bad)

    def test_empty_basis_rejected(self):
        with pytest.raises(ParameterError):
            BatchNttContext(DEGREE, ())


class TestNegacyclicConsistency:
    def test_pointwise_product_is_negacyclic_convolution(self):
        degree = 32
        basis = tuple(modmath.generate_primes(3, degree, bits=24))
        rng = np.random.default_rng(6)
        a = random_limbs(basis, degree, rng)
        b = random_limbs(basis, degree, rng)
        ctx = BatchNttContext(degree, basis)
        prod = ctx.forward(a) * ctx.forward(b) % modulus_column(basis)
        got = ctx.inverse(prod)
        for i, q in enumerate(basis):
            assert np.array_equal(
                got[i], negacyclic_convolution(a[i], b[i], q))

    @given(st.integers(0, 2 ** 32))
    @settings(max_examples=10, deadline=None)
    def test_convolution_property(self, seed):
        degree = 16
        basis = tuple(modmath.generate_primes(2, degree, bits=20))
        rng = np.random.default_rng(seed)
        a = random_limbs(basis, degree, rng)
        b = random_limbs(basis, degree, rng)
        ctx = BatchNttContext(degree, basis)
        prod = ctx.forward(a) * ctx.forward(b) % modulus_column(basis)
        got = ctx.inverse(prod)
        for i, q in enumerate(basis):
            assert np.array_equal(
                got[i], negacyclic_convolution(a[i], b[i], q))


class TestRnsPolynomialPaths:
    """The RnsPolynomial fast paths agree with the per-limb originals."""

    def test_to_from_ntt_match_per_limb(self):
        rng = np.random.default_rng(7)
        coeffs = random_limbs(MIXED_BASIS, DEGREE, rng)
        poly = RnsPolynomial(coeffs.copy(), MIXED_BASIS, is_ntt=False)
        assert np.array_equal(poly.to_ntt().coeffs,
                              reference_forward(MIXED_BASIS, coeffs))
        values = RnsPolynomial(coeffs.copy(), MIXED_BASIS, is_ntt=True)
        assert np.array_equal(values.from_ntt().coeffs,
                              reference_inverse(MIXED_BASIS, coeffs))

    def test_cached_context_shares_tables(self):
        ctx = batch_ntt_context(DEGREE, MIXED_BASIS)
        assert ctx is batch_ntt_context(DEGREE, MIXED_BASIS)

    def test_arithmetic_matches_per_limb(self):
        rng = np.random.default_rng(8)
        a = RnsPolynomial(random_limbs(MIXED_BASIS, DEGREE, rng),
                          MIXED_BASIS, is_ntt=True)
        b = RnsPolynomial(random_limbs(MIXED_BASIS, DEGREE, rng),
                          MIXED_BASIS, is_ntt=True)
        for op, ref in (
                (lambda: (a + b).coeffs, modmath.mod_add),
                (lambda: (a - b).coeffs, modmath.mod_sub),
                (lambda: (a * b).coeffs, modmath.mod_mul)):
            got = op()
            for i, q in enumerate(MIXED_BASIS):
                assert np.array_equal(got[i], ref(a.coeffs[i],
                                                  b.coeffs[i], q))
        neg = (-a).coeffs
        scaled = a.scalar_mul([3 * q // 4 for q in MIXED_BASIS]).coeffs
        for i, q in enumerate(MIXED_BASIS):
            assert np.array_equal(neg[i], modmath.mod_neg(a.coeffs[i], q))
            assert np.array_equal(
                scaled[i],
                modmath.mod_mul_scalar(a.coeffs[i], 3 * q // 4, q))


class TestBasisConvertVectorized:
    def reference_convert(self, poly, dst_basis):
        """The original per-limb / per-prime double loop."""
        src_basis = poly.basis
        src_prod = 1
        for q in src_basis:
            src_prod *= q
        y = np.empty_like(poly.coeffs)
        frac = np.zeros(poly.degree, dtype=np.float64)
        for i, q in enumerate(src_basis):
            q_hat = src_prod // q
            q_hat_inv = modmath.mod_inverse(q_hat % q, q)
            y[i] = modmath.mod_mul_scalar(poly.coeffs[i], q_hat_inv, q)
            frac += y[i] / q
        u = np.round(frac).astype(np.int64)
        out = np.empty((len(dst_basis), poly.degree), dtype=np.int64)
        for j, p in enumerate(dst_basis):
            acc = np.zeros(poly.degree, dtype=np.int64)
            for i, q in enumerate(src_basis):
                acc = (acc + y[i] * ((src_prod // q) % p)) % p
            out[j] = (acc - u % p * (src_prod % p)) % p
        return out

    def test_matches_reference_double_loop(self):
        degree = 64
        src = tuple(modmath.generate_primes(4, degree, bits=28))
        dst = tuple(modmath.generate_primes(7, degree, bits=26)[4:])
        rng = np.random.default_rng(9)
        poly = RnsPolynomial(random_limbs(src, degree, rng), src,
                             is_ntt=False)
        got = basis_convert(poly, dst)
        assert got.basis == dst
        assert not got.is_ntt
        assert np.array_equal(got.coeffs, self.reference_convert(poly, dst))

    def test_31_bit_primes_do_not_overflow(self):
        """Worst-case widths: one chunked reduction per limb."""
        degree = 32
        src = tuple(modmath.generate_primes(4, degree, bits=31))
        dst = tuple(modmath.generate_primes(6, degree, bits=31)[4:])
        coeffs = np.stack([np.full(degree, q - 1, dtype=np.int64)
                           for q in src])
        poly = RnsPolynomial(coeffs, src, is_ntt=False)
        got = basis_convert(poly, dst)
        assert np.array_equal(got.coeffs, self.reference_convert(poly, dst))
        assert np.all(got.coeffs >= 0)
        for j, p in enumerate(dst):
            assert np.all(got.coeffs[j] < p)
