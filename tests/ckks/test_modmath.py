"""Unit and property tests for modular arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import modmath
from repro.errors import ParameterError


class TestPrimeGeneration:
    def test_primes_are_prime_and_ntt_friendly(self):
        primes = modmath.generate_primes(5, 1024, bits=28)
        assert len(primes) == len(set(primes)) == 5
        for q in primes:
            assert modmath.is_prime(q)
            assert q % 2048 == 1
            assert q < 2 ** 28

    def test_primes_descend_from_bound(self):
        primes = modmath.generate_primes(3, 64, bits=20)
        assert primes == sorted(primes, reverse=True)

    def test_scale_primes_bracket_target(self):
        primes = modmath.generate_scale_primes(6, 256, bits=25)
        target = 2 ** 25
        assert any(p > target for p in primes)
        assert any(p < target for p in primes)
        for p in primes:
            assert abs(p - target) / target < 0.01
            assert p % 512 == 1

    def test_too_wide_prime_rejected(self):
        with pytest.raises(ParameterError):
            modmath.generate_primes(1, 64, bits=40)

    def test_is_prime_basics(self):
        assert modmath.is_prime(2)
        assert modmath.is_prime(97)
        assert not modmath.is_prime(1)
        assert not modmath.is_prime(91)        # 7 * 13
        assert not modmath.is_prime(3215031751)  # strong pseudoprime base 2..7


class TestRoots:
    def test_root_of_unity_order(self):
        q = modmath.generate_primes(1, 512, bits=28)[0]
        w = modmath.root_of_unity(1024, q)
        assert pow(w, 1024, q) == 1
        assert pow(w, 512, q) != 1

    def test_primitive_root(self):
        g = modmath.primitive_root(257)
        seen = {pow(g, k, 257) for k in range(256)}
        assert len(seen) == 256

    def test_mod_inverse(self):
        q = 998244353
        for a in (1, 2, 12345, q - 1):
            assert a * modmath.mod_inverse(a, q) % q == 1


@st.composite
def residue_arrays(draw):
    q = draw(st.sampled_from(modmath.generate_primes(4, 64, bits=28)))
    size = draw(st.integers(1, 64))
    values = draw(st.lists(st.integers(0, q - 1),
                           min_size=size, max_size=size))
    return q, np.array(values, dtype=np.int64)


class TestVectorOps:
    @given(residue_arrays())
    @settings(max_examples=50, deadline=None)
    def test_add_sub_roundtrip(self, data):
        q, a = data
        b = (a * 7 + 13) % q
        assert np.array_equal(
            modmath.mod_sub(modmath.mod_add(a, b, q), b, q), a)

    @given(residue_arrays())
    @settings(max_examples=50, deadline=None)
    def test_neg_is_additive_inverse(self, data):
        q, a = data
        total = modmath.mod_add(a, modmath.mod_neg(a, q), q)
        assert np.all(total == 0)

    @given(residue_arrays())
    @settings(max_examples=50, deadline=None)
    def test_mul_matches_python_ints(self, data):
        q, a = data
        b = (a * 31 + 5) % q
        got = modmath.mod_mul(a, b, q)
        expect = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert got.tolist() == expect

    def test_mac(self):
        q = 97
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([4, 5, 6], dtype=np.int64)
        c = np.array([90, 90, 90], dtype=np.int64)
        assert modmath.mod_mac(a, b, c, q).tolist() == [
            (4 + 90) % 97, (10 + 90) % 97, (18 + 90) % 97]


#: The widest primes the int64 safety argument admits.
BOUNDARY_PRIME = modmath.generate_primes(1, 64, bits=31)[0]


class TestOverflowBoundary:
    """31-bit primes with maximal residues — the int64 safety margin.

    Products reach ``(q-1)^2 < 2^62`` and sums reach ``2q - 2 < 2^32``;
    every primitive must stay exact against Python big-int arithmetic.
    """

    q = BOUNDARY_PRIME
    a = np.array([BOUNDARY_PRIME - 1, BOUNDARY_PRIME - 2, 1, 0],
                 dtype=np.int64)
    b = np.array([BOUNDARY_PRIME - 1, BOUNDARY_PRIME - 1, BOUNDARY_PRIME - 2,
                  BOUNDARY_PRIME - 1], dtype=np.int64)

    def expect(self, fn):
        return [fn(int(x), int(y)) % self.q for x, y in zip(self.a, self.b)]

    def test_prime_is_31_bits(self):
        assert 2 ** 30 < self.q < 2 ** 31

    def test_add_at_boundary(self):
        got = modmath.mod_add(self.a, self.b, self.q)
        assert got.tolist() == self.expect(lambda x, y: x + y)

    def test_sub_at_boundary(self):
        got = modmath.mod_sub(self.a, self.b, self.q)
        assert got.tolist() == self.expect(lambda x, y: x - y)

    def test_mul_at_boundary(self):
        got = modmath.mod_mul(self.a, self.b, self.q)
        assert got.tolist() == self.expect(lambda x, y: x * y)

    def test_mac_at_boundary(self):
        acc = np.full(4, self.q - 1, dtype=np.int64)
        got = modmath.mod_mac(self.a, self.b, acc, self.q)
        expect = [(int(x) * int(y) + self.q - 1) % self.q
                  for x, y in zip(self.a, self.b)]
        assert got.tolist() == expect

    def test_mac_single_reduction_stays_in_range(self):
        # a·b mod q and acc are both q-1: the sum 2q-2 must fold back
        # with one conditional subtraction, never a second % pass.
        a = np.array([1], dtype=np.int64)
        b = np.array([self.q - 1], dtype=np.int64)
        acc = np.array([self.q - 1], dtype=np.int64)
        assert modmath.mod_mac(a, b, acc, self.q).tolist() == [self.q - 2]


class TestIntoVariants:
    """The allocation-free kernels match the pure functions exactly."""

    def setup_method(self):
        self.rng = np.random.default_rng(42)
        self.bases = (modmath.generate_primes(1, 64, bits=20)[0],
                      modmath.generate_primes(1, 64, bits=28)[0],
                      BOUNDARY_PRIME)

    def pair(self, q, shape=(64,)):
        a = self.rng.integers(0, q, size=shape, dtype=np.int64)
        b = self.rng.integers(0, q, size=shape, dtype=np.int64)
        return a, b

    def test_scalar_modulus_matches_pure(self):
        for q in self.bases:
            a, b = self.pair(q)
            out = np.empty_like(a)
            assert np.array_equal(
                modmath.mod_add_into(a, b, q, out), modmath.mod_add(a, b, q))
            assert np.array_equal(
                modmath.mod_sub_into(a, b, q, out), modmath.mod_sub(a, b, q))
            assert np.array_equal(
                modmath.mod_mul_into(a, b, q, out), modmath.mod_mul(a, b, q))
            assert np.array_equal(
                modmath.mod_neg_into(a, q, out), modmath.mod_neg(a, q))
            acc = self.rng.integers(0, q, size=64, dtype=np.int64)
            assert np.array_equal(
                modmath.mod_mac_into(a, b, acc, q, out),
                modmath.mod_mac(a, b, acc, q))

    def test_column_modulus_broadcast(self):
        """(L, 1) per-limb moduli — the batched engine's layout."""
        q_col = np.array(self.bases, dtype=np.int64).reshape(-1, 1)
        a = np.stack([self.rng.integers(0, q, size=64, dtype=np.int64)
                      for q in self.bases])
        b = np.stack([self.rng.integers(0, q, size=64, dtype=np.int64)
                      for q in self.bases])
        out = np.empty_like(a)
        modmath.mod_add_into(a, b, q_col, out)
        for i, q in enumerate(self.bases):
            assert np.array_equal(out[i], modmath.mod_add(a[i], b[i], q))
        modmath.mod_sub_into(a, b, q_col, out)
        for i, q in enumerate(self.bases):
            assert np.array_equal(out[i], modmath.mod_sub(a[i], b[i], q))
        modmath.mod_mul_into(a, b, q_col, out)
        for i, q in enumerate(self.bases):
            assert np.array_equal(out[i], modmath.mod_mul(a[i], b[i], q))

    def test_aliasing_out_with_operand(self):
        q = self.bases[1]
        a, b = self.pair(q)
        expect = modmath.mod_add(a, b, q)
        got = modmath.mod_add_into(a, b, q, out=a)
        assert got is a
        assert np.array_equal(a, expect)
        a2 = self.rng.integers(0, q, size=64, dtype=np.int64)
        expect_neg = modmath.mod_neg(a2, q)
        modmath.mod_neg_into(a2, q, out=a2)
        assert np.array_equal(a2, expect_neg)

    def test_explicit_mask_reuse(self):
        q = BOUNDARY_PRIME
        a, b = self.pair(q)
        out = np.empty_like(a)
        mask = np.empty(a.shape, dtype=bool)
        modmath.mod_add_into(a, b, q, out, mask=mask)
        assert np.array_equal(out, modmath.mod_add(a, b, q))
        modmath.mod_sub_into(a, b, q, out, mask=mask)
        assert np.array_equal(out, modmath.mod_sub(a, b, q))

    def test_boundary_values_into(self):
        q = BOUNDARY_PRIME
        a = np.full(8, q - 1, dtype=np.int64)
        b = np.full(8, q - 1, dtype=np.int64)
        out = np.empty_like(a)
        assert modmath.mod_add_into(a, b, q, out).tolist() == [q - 2] * 8
        assert modmath.mod_mul_into(a, b, q, out).tolist() == [1] * 8


class TestMontgomery:
    def test_roundtrip_and_mul(self):
        q = modmath.generate_primes(1, 128, bits=28)[0]
        ctx = modmath.MontgomeryContext(q)
        rng = np.random.default_rng(0)
        a = rng.integers(0, q, 200, dtype=np.int64)
        b = rng.integers(0, q, 200, dtype=np.int64)
        assert np.array_equal(ctx.from_mont(ctx.to_mont(a)), a)
        got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)))
        assert np.array_equal(got, a * b % q)

    def test_rejects_wide_modulus(self):
        with pytest.raises(ParameterError):
            modmath.MontgomeryContext((1 << 29) + 3, r_bits=28)

    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            modmath.MontgomeryContext(2 ** 20)

    @given(st.integers(0, 2 ** 28 - 1), st.integers(0, 2 ** 28 - 1))
    @settings(max_examples=100, deadline=None)
    def test_mul_property(self, x, y):
        q = 268369921  # 2^28 - 65536 + 1... a fixed NTT-friendly prime
        if not modmath.is_prime(q):
            q = modmath.generate_primes(1, 64, bits=28)[0]
        x %= q
        y %= q
        ctx = modmath.MontgomeryContext(q)
        a = np.array([x], dtype=np.int64)
        b = np.array([y], dtype=np.int64)
        got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)))[0]
        assert got == x * y % q
