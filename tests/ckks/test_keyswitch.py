"""Tests for basis conversion, ModUp/ModDown, rescaling, key switching."""

import numpy as np
import pytest

from repro.ckks import modmath
from repro.ckks.keyswitch import (DigitDecomposition, basis_convert, mod_down,
                                  mod_up, rescale_poly)
from repro.ckks.rns import RnsPolynomial, basis_product
from repro.errors import ParameterError

N = 64
SRC = tuple(modmath.generate_primes(3, N, bits=26))
DST = tuple(modmath.generate_primes(6, N, bits=28))[3:]


class TestBasisConvert:
    def test_exact_for_centered_values(self):
        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(-10 ** 9, 10 ** 9, N)]
        poly = RnsPolynomial.from_int_coeffs(values, SRC)
        converted = basis_convert(poly, DST)
        assert [int(v) for v in converted.to_int_coeffs()] == values

    def test_exact_near_half_product(self):
        bound = basis_product(SRC) // 2
        values = [bound // 3, -(bound // 3)] + [0] * (N - 2)
        poly = RnsPolynomial.from_int_coeffs(values, SRC)
        converted = basis_convert(poly, DST)
        assert [int(v) for v in converted.to_int_coeffs()] == values

    def test_requires_coefficient_domain(self):
        poly = RnsPolynomial.zero(N, SRC, is_ntt=True)
        with pytest.raises(ParameterError):
            basis_convert(poly, DST)


class TestRescale:
    def test_divides_by_last_prime(self):
        rng = np.random.default_rng(1)
        last = SRC[-1]
        values = [int(v) * last for v in rng.integers(-1000, 1000, N)]
        poly = RnsPolynomial.from_int_coeffs(values, SRC)
        out = rescale_poly(poly)
        assert out.basis == SRC[:-1]
        expect = [v // last for v in values]
        assert [int(v) for v in out.to_int_coeffs()] == expect

    def test_rounding_error_bounded(self):
        rng = np.random.default_rng(2)
        values = [int(v) for v in rng.integers(-10 ** 12, 10 ** 12, N)]
        poly = RnsPolynomial.from_int_coeffs(values, SRC)
        out = rescale_poly(poly)
        last = SRC[-1]
        for got, original in zip(out.to_int_coeffs(), values):
            assert abs(int(got) - original / last) <= 1.0

    def test_single_limb_rejected(self):
        poly = RnsPolynomial.zero(N, SRC[:1], is_ntt=False)
        with pytest.raises(ParameterError):
            rescale_poly(poly)


@pytest.fixture(scope="module")
def decomp():
    moduli = tuple(modmath.generate_primes(6, N, bits=26))
    aux = tuple(modmath.generate_primes(8, N, bits=28))[6:]
    return DigitDecomposition(moduli=moduli, aux_moduli=aux, aux_count=2)


class TestDigitDecomposition:
    def test_dnum(self, decomp):
        assert decomp.dnum == 3
        assert decomp.group(0) == decomp.moduli[:2]
        assert decomp.group(2) == decomp.moduli[4:6]

    def test_gadget_congruences(self, decomp):
        p_prod = basis_product(decomp.aux_moduli)
        for j in range(decomp.dnum):
            gadget = decomp.gadget_values(j)
            for idx, q in enumerate(decomp.full_basis):
                if q in decomp.group(j):
                    assert gadget[idx] == p_prod % q
                elif q in decomp.moduli:
                    assert gadget[idx] == 0
                else:  # aux primes: P ≡ 0
                    assert gadget[idx] == 0


class TestModUpDown:
    def test_mod_up_preserves_digit_values(self, decomp):
        rng = np.random.default_rng(3)
        values = [int(v) for v in rng.integers(-10 ** 6, 10 ** 6, N)]
        poly = RnsPolynomial.from_int_coeffs(values, decomp.moduli).to_ntt()
        group = decomp.group(0)
        target = decomp.full_basis
        extended = mod_up(poly, group, target)
        assert extended.basis == target
        # The digit is the centered representative mod the group product.
        group_prod = basis_product(group)
        digit = [((v + group_prod // 2) % group_prod) - group_prod // 2
                 for v in values]
        assert [int(v) for v in extended.to_int_coeffs()] == digit

    def test_mod_down_divides_by_p(self, decomp):
        rng = np.random.default_rng(4)
        p_prod = basis_product(decomp.aux_moduli)
        base = [int(v) for v in rng.integers(-1000, 1000, N)]
        values = [v * p_prod for v in base]
        poly = RnsPolynomial.from_int_coeffs(
            values, decomp.full_basis).to_ntt()
        out = mod_down(poly, decomp.moduli, decomp.aux_moduli)
        assert out.basis == decomp.moduli
        assert [int(v) for v in out.to_int_coeffs()] == base

    def test_mod_down_rounds_small_remainder(self, decomp):
        p_prod = basis_product(decomp.aux_moduli)
        values = [5 * p_prod + 17] + [0] * (N - 1)
        poly = RnsPolynomial.from_int_coeffs(
            values, decomp.full_basis).to_ntt()
        out = mod_down(poly, decomp.moduli, decomp.aux_moduli)
        assert abs(int(out.to_int_coeffs()[0]) - 5) <= 1
