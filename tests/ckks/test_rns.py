"""Tests for RNS polynomial representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import modmath
from repro.ckks.rns import RnsPolynomial, basis_product
from repro.errors import ParameterError

BASIS = tuple(modmath.generate_primes(3, 64, bits=26))
N = 64


def _poly_from(values):
    return RnsPolynomial.from_int_coeffs(list(values), BASIS)


class TestConstruction:
    def test_zero(self):
        z = RnsPolynomial.zero(N, BASIS)
        assert z.limb_count == 3
        assert np.all(z.coeffs == 0)

    def test_limb_prime_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            RnsPolynomial(np.zeros((2, N), dtype=np.int64), BASIS)

    def test_from_signed_ints(self):
        p = _poly_from([-5] + [0] * (N - 1))
        for i, q in enumerate(BASIS):
            assert p.coeffs[i, 0] == q - 5

    def test_big_int_reduction(self):
        big = basis_product(BASIS) + 7
        p = RnsPolynomial.from_int_coeffs([big] + [0] * (N - 1), BASIS)
        assert all(p.coeffs[i, 0] == 7 for i in range(3))


class TestCrtRoundtrip:
    @given(st.lists(st.integers(-10 ** 12, 10 ** 12), min_size=N, max_size=N))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_centered(self, values):
        p = _poly_from(values)
        assert [int(v) for v in p.to_int_coeffs()] == values

    def test_roundtrip_through_ntt(self):
        values = list(range(-32, 32))
        p = _poly_from(values).to_ntt()
        assert [int(v) for v in p.to_int_coeffs()] == values


class TestArithmetic:
    def test_add_sub_neg(self):
        rng = np.random.default_rng(0)
        a_vals = rng.integers(-100, 100, N)
        b_vals = rng.integers(-100, 100, N)
        a = _poly_from(a_vals)
        b = _poly_from(b_vals)
        assert [int(v) for v in (a + b).to_int_coeffs()] == list(a_vals + b_vals)
        assert [int(v) for v in (a - b).to_int_coeffs()] == list(a_vals - b_vals)
        assert [int(v) for v in (-a).to_int_coeffs()] == list(-a_vals)

    def test_mul_requires_ntt(self):
        a = _poly_from([1] * N)
        with pytest.raises(ParameterError):
            _ = a * a

    def test_mul_is_negacyclic(self):
        # (1 + X) * (1 - X) = 1 - X^2
        a = _poly_from([1, 1] + [0] * (N - 2)).to_ntt()
        b = _poly_from([1, -1] + [0] * (N - 2)).to_ntt()
        prod = (a * b).to_int_coeffs()
        expect = [1, 0, -1] + [0] * (N - 3)
        assert [int(v) for v in prod] == expect

    def test_scalar_mul_per_limb(self):
        a = _poly_from([1] * N)
        constants = [2, 3, 5]
        out = a.scalar_mul(constants)
        for i in range(3):
            assert np.all(out.coeffs[i] == constants[i])

    def test_domain_mismatch_rejected(self):
        a = _poly_from([1] * N)
        b = _poly_from([1] * N).to_ntt()
        with pytest.raises(ParameterError):
            _ = a + b


class TestBasisManipulation:
    def test_restrict_and_concat(self):
        a = _poly_from(list(range(N)))
        front = a.restrict(BASIS[:2])
        back = a.restrict(BASIS[2:])
        combined = front.concat(back)
        assert combined.basis == BASIS
        assert np.array_equal(combined.coeffs, a.coeffs)

    def test_restrict_reorders(self):
        a = _poly_from(list(range(N)))
        swapped = a.restrict((BASIS[1], BASIS[0]))
        assert np.array_equal(swapped.coeffs[0], a.coeffs[1])

    def test_restrict_unknown_prime_rejected(self):
        a = _poly_from([0] * N)
        with pytest.raises(ParameterError):
            a.restrict((7,))

    def test_concat_overlapping_rejected(self):
        a = _poly_from([0] * N)
        with pytest.raises(ParameterError):
            a.concat(a)
