"""Tests for CKKS bootstrapping at reduced ring degree."""

import numpy as np
import pytest

from repro.ckks.bootstrap import (Bootstrapper, mod_raise,
                                  special_fft_matrix)
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyGenerator
from repro.errors import LevelError, ParameterError
from repro.params import CkksParams


@pytest.fixture(scope="module")
def boot_setup():
    params = CkksParams.create(degree=2 ** 7, level_count=15, aux_count=4,
                               prime_bits=28, base_prime_bits=31)
    keygen = KeyGenerator(params, seed=11)
    keys = keygen.generate(sparse_secret=True)
    ev = CkksEvaluator(params, keys)
    bts = Bootstrapper(ev, keygen)
    return params, ev, bts


class TestSpecialFft:
    def test_matrix_matches_encoder_embedding(self):
        from repro.ckks.encoder import embed
        degree = 64
        n = degree // 2
        e0 = special_fft_matrix(degree)
        rng = np.random.default_rng(0)
        c = np.zeros(degree)
        c[:n] = rng.normal(size=n)
        assert np.allclose(embed(c, degree), e0 @ c[:n], atol=1e-9)

    def test_second_half_contributes_i_times_e0(self):
        from repro.ckks.encoder import embed
        degree = 64
        n = degree // 2
        e0 = special_fft_matrix(degree)
        rng = np.random.default_rng(1)
        c = np.zeros(degree)
        c[n:] = rng.normal(size=n)
        assert np.allclose(embed(c, degree), 1j * (e0 @ c[n:]), atol=1e-9)

    def test_invertible(self):
        e0 = special_fft_matrix(64)
        assert np.linalg.cond(e0) < 1e3


class TestModRaise:
    def test_requires_single_limb(self, boot_setup):
        params, ev, _ = boot_setup
        ct = ev.encrypt_message(np.ones(params.slot_count))
        with pytest.raises(ParameterError):
            mod_raise(ct, tuple(params.moduli))

    def test_raised_decrypts_to_message_plus_q0_multiple(self, boot_setup):
        params, ev, _ = boot_setup
        rng = np.random.default_rng(2)
        m = 0.3 * rng.normal(size=params.slot_count)
        ct = ev.drop_to_basis(ev.encrypt_message(m), tuple(params.moduli[:1]))
        raised = mod_raise(ct, tuple(params.moduli))
        coeffs = ev.decrypt(raised).poly.to_int_coeffs().astype(np.float64)
        q0 = params.moduli[0]
        residue = coeffs - q0 * np.round(coeffs / q0)
        # The residue mod q0 is the plaintext (plus noise), and I is small.
        assert np.abs(coeffs / q0).max() < 16
        expect = ev.decrypt(ct).poly.to_int_coeffs().astype(np.float64)
        expect = expect - q0 * np.round(expect / q0)
        assert np.abs(residue - expect).max() < 2


class TestBootstrap:
    def test_end_to_end_precision(self, boot_setup):
        params, ev, bts = boot_setup
        rng = np.random.default_rng(9)
        m = 0.3 * (rng.normal(size=params.slot_count)
                   + 1j * rng.normal(size=params.slot_count))
        ct_low = ev.drop_to_basis(ev.encrypt_message(m),
                                  tuple(params.moduli[:1]))
        out = bts.bootstrap(ct_low)
        dec = ev.decrypt_message(out)
        assert np.abs(dec - m).max() < 5e-3

    def test_restores_levels(self, boot_setup):
        params, ev, bts = boot_setup
        rng = np.random.default_rng(10)
        m = 0.2 * rng.normal(size=params.slot_count)
        ct_low = ev.drop_to_basis(ev.encrypt_message(m),
                                  tuple(params.moduli[:1]))
        out = bts.bootstrap(ct_low)
        assert out.level_count >= 2
        assert out.level_count == params.level_count - bts.depth()

    def test_output_supports_multiplication(self, boot_setup):
        params, ev, bts = boot_setup
        rng = np.random.default_rng(11)
        m = 0.3 * rng.normal(size=params.slot_count)
        ct_low = ev.drop_to_basis(ev.encrypt_message(m),
                                  tuple(params.moduli[:1]))
        out = bts.bootstrap(ct_low)
        squared = ev.multiply(out, out)
        got = ev.decrypt_message(squared).real
        assert np.abs(got - m * m).max() < 5e-3

    def test_insufficient_levels_raises(self):
        params = CkksParams.create(degree=2 ** 7, level_count=6, aux_count=2,
                                   prime_bits=28, base_prime_bits=31)
        keygen = KeyGenerator(params, seed=1)
        keys = keygen.generate(sparse_secret=True)
        ev = CkksEvaluator(params, keys)
        bts = Bootstrapper(ev, keygen)
        m = np.ones(params.slot_count) * 0.1
        ct = ev.drop_to_basis(ev.encrypt_message(m), tuple(params.moduli[:1]))
        with pytest.raises(LevelError):
            bts.bootstrap(ct)

    def test_depth_matches_config(self, boot_setup):
        _, _, bts = boot_setup
        # CtS + StC + normalize(2) + ceil(log2(79)) + combination
        assert bts.depth() == 2 + 2 + 7 + 1
