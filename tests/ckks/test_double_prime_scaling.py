"""Tests for double-prime scaling ([1], [45] — the Table IV setting).

The paper keeps 28-bit hardware words but sustains Δ = 2^48-2^55 by
backing each multiplicative level with a *pair* of primes whose product
approximates the scale; rescaling drops both.
"""

import numpy as np
import pytest

from repro.ckks.evaluator import make_context
from repro.errors import LevelError, ParameterError
from repro.params import CkksParams, toy_params


@pytest.fixture(scope="module")
def dp_params():
    return CkksParams.create_double_prime(
        degree=2 ** 9, level_pairs=4, aux_count=3, scale_bits=48)


@pytest.fixture(scope="module")
def dp_context(dp_params):
    return make_context(dp_params, rotations=[1])


class TestParameterConstruction:
    def test_structure(self, dp_params):
        assert dp_params.primes_per_level == 2
        assert dp_params.level_count == 2 + 2 * 4   # base pair + 4 pairs
        assert dp_params.scale == 2.0 ** 48

    def test_pairs_multiply_to_scale(self, dp_params):
        pairs = dp_params.moduli[2:]
        for i in range(0, len(pairs), 2):
            product = pairs[i] * pairs[i + 1]
            assert abs(product / 2.0 ** 48 - 1.0) < 0.01

    def test_primes_word_sized(self, dp_params):
        # All scale primes stay below 2^28 (the MMAC operand width).
        for q in dp_params.moduli[2:]:
            assert q < 2 ** 28

    def test_odd_scale_bits_rejected(self):
        with pytest.raises(ParameterError):
            CkksParams.create_double_prime(2 ** 9, 2, 2, scale_bits=49)


class TestArithmetic:
    def test_roundtrip_precision(self, dp_context, dp_params):
        rng = np.random.default_rng(0)
        u = rng.normal(size=dp_params.slot_count)
        ct = dp_context.encrypt_message(u)
        err = np.abs(dp_context.decrypt_message(ct).real - u).max()
        assert err < 1e-9    # far below single-prime 28-bit noise

    def test_rescale_drops_pair_and_keeps_scale(self, dp_context,
                                                dp_params):
        rng = np.random.default_rng(1)
        u = rng.normal(size=dp_params.slot_count)
        ct = dp_context.encrypt_message(u)
        raw = dp_context.mul_scalar(ct, 1.0, rescale=False)
        out = dp_context.rescale(raw)
        assert out.level_count == ct.level_count - 2
        assert out.scale == pytest.approx(dp_params.scale, rel=1e-3)

    def test_hmult_precision_beats_single_prime(self, dp_context,
                                                dp_params):
        rng = np.random.default_rng(2)
        u = rng.normal(size=dp_params.slot_count)
        v = rng.normal(size=dp_params.slot_count)
        out = dp_context.multiply(dp_context.encrypt_message(u),
                                  dp_context.encrypt_message(v))
        dp_err = np.abs(dp_context.decrypt_message(out).real - u * v).max()

        sp = make_context(toy_params(degree=2 ** 9, level_count=5,
                                     aux_count=3))
        n = 2 ** 8
        sp_out = sp.multiply(sp.encrypt_message(u[:n]),
                             sp.encrypt_message(v[:n]))
        sp_err = np.abs(sp.decrypt_message(sp_out).real[:n]
                        - (u * v)[:n]).max()
        assert dp_err < sp_err / 100
        assert dp_err < 1e-8

    def test_rotation_under_double_prime(self, dp_context, dp_params):
        rng = np.random.default_rng(3)
        u = rng.normal(size=dp_params.slot_count)
        out = dp_context.rotate(dp_context.encrypt_message(u), 1)
        err = np.abs(dp_context.decrypt_message(out).real
                     - np.roll(u, -1)).max()
        assert err < 1e-8

    def test_multiplication_chain_to_exhaustion(self, dp_context,
                                                dp_params):
        rng = np.random.default_rng(4)
        u = rng.uniform(0.5, 1.0, dp_params.slot_count)
        ct = dp_context.encrypt_message(u)
        expect = u
        for _ in range(4):           # all four pairs
            ct = dp_context.multiply(ct, ct)
            expect = expect * expect
        assert ct.level_count == 2   # the base pair remains
        err = np.abs(dp_context.decrypt_message(ct).real - expect).max()
        assert err < 1e-6
        with pytest.raises(LevelError):
            dp_context.multiply(ct, ct)

    def test_precise_scalar_mul(self, dp_context, dp_params):
        rng = np.random.default_rng(5)
        u = rng.normal(size=dp_params.slot_count)
        ct = dp_context.encrypt_message(u)
        out = dp_context.mul_scalar_precise(ct, 1e-9, depth=2)
        assert out.scale == pytest.approx(ct.scale, rel=1e-12)
        err = np.abs(dp_context.decrypt_message(out) - 1e-9 * u).max()
        assert err < 1e-12


class TestDoublePrimeBootstrap:
    """Bootstrapping under the paper's actual scaling regime: 48-bit
    scale from 24-bit prime pairs, a 56-bit base pair, word-sized
    primes throughout — and ~3 decimal digits more precision than the
    single-prime functional bootstrap."""

    @pytest.fixture(scope="class")
    def boot_setup(self):
        from repro.ckks.bootstrap import Bootstrapper
        from repro.ckks.evaluator import CkksEvaluator
        from repro.ckks.keys import KeyGenerator

        params = CkksParams.create_double_prime(
            degree=2 ** 7, level_pairs=14, aux_count=7, scale_bits=48,
            base_prime_bits=28)
        keygen = KeyGenerator(params, seed=11)
        keys = keygen.generate(sparse_secret=True)
        ev = CkksEvaluator(params, keys)
        return params, ev, Bootstrapper(ev, keygen)

    def test_base_modulus_is_the_pair_product(self, boot_setup):
        params, _, bts = boot_setup
        assert bts.base_limbs == 2
        assert bts.base_modulus == params.moduli[0] * params.moduli[1]

    def test_end_to_end_precision(self, boot_setup):
        params, ev, bts = boot_setup
        rng = np.random.default_rng(9)
        m = 0.3 * (rng.normal(size=params.slot_count)
                   + 1j * rng.normal(size=params.slot_count))
        ct_low = ev.drop_to_basis(ev.encrypt_message(m),
                                  tuple(params.moduli[:2]))
        out = bts.bootstrap(ct_low)
        err = np.abs(ev.decrypt_message(out) - m).max()
        # ~1e-6 vs ~8e-4 for the single-prime configuration.
        assert err < 2e-5
        assert out.level_count >= 2 + 2  # at least one level + base pair

    def test_output_supports_multiplication(self, boot_setup):
        params, ev, bts = boot_setup
        rng = np.random.default_rng(10)
        m = 0.3 * rng.normal(size=params.slot_count)
        ct_low = ev.drop_to_basis(ev.encrypt_message(m),
                                  tuple(params.moduli[:2]))
        out = bts.bootstrap(ct_low)
        sq = ev.multiply(out, out)
        err = np.abs(ev.decrypt_message(sq).real - m * m).max()
        assert err < 5e-5
