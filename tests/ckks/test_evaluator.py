"""End-to-end tests of the homomorphic basic functions (§II-A)."""

import numpy as np
import pytest

from repro.errors import EvalKeyError, LevelError, ScaleMismatchError

TOL = 2e-3


def _msg(rng, n, magnitude=1.0):
    return magnitude * (rng.normal(size=n) + 1j * rng.normal(size=n))


class TestEncryptDecrypt:
    def test_roundtrip(self, small_context, message):
        ct = small_context.encrypt_message(message)
        assert np.abs(small_context.decrypt_message(ct) - message).max() < TOL

    def test_fresh_noise_is_small(self, small_context, message):
        ct = small_context.encrypt_message(message)
        err = np.abs(small_context.decrypt_message(ct) - message).max()
        assert err < 1e-3

    def test_two_encryptions_differ(self, small_context, message):
        c1 = small_context.encrypt_message(message)
        c2 = small_context.encrypt_message(message)
        assert not np.array_equal(c1.a.coeffs, c2.a.coeffs)


class TestAdditive:
    def test_hadd(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        out = small_context.add(small_context.encrypt_message(u),
                                small_context.encrypt_message(v))
        assert np.abs(small_context.decrypt_message(out) - (u + v)).max() < TOL

    def test_hsub(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        out = small_context.sub(small_context.encrypt_message(u),
                                small_context.encrypt_message(v))
        assert np.abs(small_context.decrypt_message(out) - (u - v)).max() < TOL

    def test_negate(self, small_context, message):
        out = small_context.negate(small_context.encrypt_message(message))
        assert np.abs(small_context.decrypt_message(out) + message).max() < TOL

    def test_add_plain(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        pt = small_context.encoder.encode(v)
        out = small_context.add_plain(ct, pt)
        assert np.abs(small_context.decrypt_message(out) - (u + v)).max() < TOL

    def test_add_scalar(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.add_scalar(ct, 2.5 - 1j)
        expect = message + (2.5 - 1j)
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL

    def test_scale_mismatch_rejected(self, small_context, message):
        c1 = small_context.encrypt_message(message)
        c2 = small_context.encrypt_message(message, scale=2.0 ** 20)
        with pytest.raises(ScaleMismatchError):
            small_context.add(c1, c2)


class TestMultiplicative:
    def test_pmult(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        pt = small_context.encoder.encode(v)
        out = small_context.mul_plain(ct, pt)
        assert out.level_count == ct.level_count - 1
        assert np.abs(small_context.decrypt_message(out) - u * v).max() < TOL

    def test_hmult(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        v = _msg(rng, small_params.slot_count)
        out = small_context.multiply(small_context.encrypt_message(u),
                                     small_context.encrypt_message(v))
        assert np.abs(small_context.decrypt_message(out) - u * v).max() < TOL

    def test_square(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        out = small_context.square(small_context.encrypt_message(u))
        assert np.abs(small_context.decrypt_message(out) - u * u).max() < TOL

    def test_mul_scalar(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.mul_scalar(ct, 0.5j)
        expect = 0.5j * message
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL

    def test_mul_scalar_precise_keeps_scale(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.mul_scalar_precise(ct, 1e-6, depth=2)
        assert out.scale == pytest.approx(ct.scale, rel=1e-12)
        expect = 1e-6 * message
        got = small_context.decrypt_message(out)
        assert np.abs(got - expect).max() < 1e-6

    def test_depth_chain(self, deep_context, rng, deep_params):
        u = _msg(rng, deep_params.slot_count, magnitude=0.9)
        ct = deep_context.encrypt_message(u)
        expect = u
        for _ in range(3):
            ct = deep_context.multiply(ct, ct)
            expect = expect * expect
        got = deep_context.decrypt_message(ct)
        assert np.abs(got - expect).max() < 5e-2

    def test_level_exhaustion(self, small_context, message):
        ct = small_context.encrypt_message(message)
        ct = small_context.drop_to_basis(ct, ct.basis[:1])
        with pytest.raises(LevelError):
            small_context.rescale(ct)


class TestRotation:
    @pytest.mark.parametrize("distance", [1, 2, 3, 5, 8, 16])
    def test_hrot(self, small_context, rng, small_params, distance):
        u = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        out = small_context.rotate(ct, distance)
        expect = np.roll(u, -distance)
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL

    def test_rotation_composition(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        out = small_context.rotate(small_context.rotate(ct, 1), 2)
        expect = np.roll(u, -3)
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL

    def test_zero_rotation_is_identity(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.rotate(ct, 0)
        assert np.array_equal(out.b.coeffs, ct.b.coeffs)

    def test_missing_key_rejected(self, small_context, message):
        ct = small_context.encrypt_message(message)
        with pytest.raises(EvalKeyError):
            small_context.rotate(ct, 7)

    def test_conjugate(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.conjugate(ct)
        expect = np.conj(message)
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL

    def test_mul_by_i(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.mul_by_i(ct)
        assert np.abs(small_context.decrypt_message(out) - 1j * message
                      ).max() < TOL

    def test_rotate_at_reduced_level(self, small_context, rng, small_params):
        u = _msg(rng, small_params.slot_count)
        ct = small_context.encrypt_message(u)
        ct = small_context.rescale(small_context.mul_scalar(
            ct, 1.0, rescale=False))
        out = small_context.rotate(ct, 2)
        expect = np.roll(u, -2)
        assert np.abs(small_context.decrypt_message(out) - expect).max() < TOL


class TestLevelManagement:
    def test_rescale_tracks_scale(self, small_context, message):
        ct = small_context.encrypt_message(message)
        raw = small_context.mul_scalar(ct, 1.0, rescale=False)
        dropped_prime = raw.basis[-1]
        out = small_context.rescale(raw)
        assert out.scale == pytest.approx(raw.scale / dropped_prime)

    def test_match_levels(self, small_context, message):
        deep = small_context.encrypt_message(message)
        shallow = small_context.drop_to_basis(deep, deep.basis[:3])
        a, b = small_context.match_levels(deep, shallow)
        assert a.level_count == b.level_count == 3

    def test_adjust_scale_to(self, small_context, message):
        ct = small_context.encrypt_message(message)
        out = small_context.adjust_scale_to(ct, ct.scale * 1.001)
        assert out.scale == pytest.approx(ct.scale * 1.001)
        got = small_context.decrypt_message(out)
        assert np.abs(got - message).max() < TOL
