"""Tier-2 threading: row-block partitioning and kernel bit-identity.

The contract under test is determinism by construction: the partition
is a pure function of ``(rows, blocks)``, every block runs the exact
serial per-row operation sequence, so a threaded NTT or BConv pass is
bit-identical to the serial one for any thread count.
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import instrument, modmath
from repro.ckks.keyswitch import basis_convert
from repro.ckks.ntt import BatchNttContext
from repro.ckks.rns import RnsPolynomial
from repro.errors import ParameterError
from repro.parallel import (block_count, get_threads, partition,
                            run_blocks, set_threads, thread_scope)
from repro.parallel.threads import MIN_ROWS_PER_BLOCK

DEGREE = 128

BASIS = tuple(modmath.generate_primes(1, DEGREE, bits=bits)[0]
              for bits in (20, 24, 28, 31, 30, 26))


class _CounterTracer:
    def __init__(self):
        self.counters = {}

    def count(self, name, value=1.0):
        self.counters[name] = self.counters.get(name, 0.0) + value


@contextmanager
def tracing():
    """Attach a throwaway engine tracer; yields its counter dict."""
    tracer = _CounterTracer()
    old = instrument.get_tracer()
    instrument.set_tracer(tracer)
    try:
        yield tracer.counters
    finally:
        instrument.set_tracer(old)


def random_limbs(basis, degree, rng, lead=()):
    limbs = np.empty(lead + (len(basis), degree), dtype=np.int64)
    for i, q in enumerate(basis):
        limbs[..., i, :] = rng.integers(0, q, size=lead + (degree,),
                                        dtype=np.int64)
    return limbs


class TestPartition:
    @given(rows=st.integers(1, 500), blocks=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_covers_rows_exactly_once(self, rows, blocks):
        spans = partition(rows, blocks)
        assert spans[0][0] == 0 and spans[-1][1] == rows
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo            # contiguous, disjoint
        assert all(hi > lo for lo, hi in spans)
        assert len(spans) <= min(blocks, rows)

    def test_pure_function_of_inputs(self):
        assert partition(10, 3) == partition(10, 3)
        assert partition(10, 3) == [(0, 3), (3, 6), (6, 10)]
        assert partition(4, 99) == [(0, 1), (1, 2), (2, 3), (3, 4)]


class TestThreadSetting:
    def test_set_threads_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            set_threads(0)

    def test_thread_scope_restores_on_exit_and_error(self):
        before = get_threads()
        with thread_scope(3):
            assert get_threads() == 3
        assert get_threads() == before
        with pytest.raises(RuntimeError):
            with thread_scope(2):
                raise RuntimeError("boom")
        assert get_threads() == before

    def test_block_count_serial_when_off_or_small(self):
        with thread_scope(1):
            assert block_count(100) == 1
        with thread_scope(4):
            assert block_count(2 * MIN_ROWS_PER_BLOCK - 1) == 1
            assert block_count(2 * MIN_ROWS_PER_BLOCK) == 2
            assert block_count(100) == 4
            # never more blocks than rows can pay for
            assert block_count(5) == min(4, 5 // MIN_ROWS_PER_BLOCK)


class TestRunBlocks:
    def test_serial_path_single_call(self):
        calls = []
        with thread_scope(1):
            used = run_blocks(10, lambda lo, hi: calls.append((lo, hi)))
        assert used == 1
        assert calls == [(0, 10)]

    def test_threaded_matches_serial_output(self):
        out_serial = np.zeros(12)
        out_threaded = np.zeros(12)

        def make_work(out):
            def work(lo, hi):
                for i in range(lo, hi):
                    out[i] = i * i + 1
            return work

        with thread_scope(1):
            run_blocks(12, make_work(out_serial))
        with thread_scope(3):
            used = run_blocks(12, make_work(out_threaded))
        assert used == 3
        assert np.array_equal(out_serial, out_threaded)

    def test_exceptions_propagate(self):
        def work(lo, hi):
            raise ValueError("block failure")

        with thread_scope(2):
            with pytest.raises(ValueError):
                run_blocks(10, work)


class TestThreadedNtt:
    @pytest.mark.parametrize("threads", [2, 3])
    def test_forward_inverse_bit_identical(self, threads):
        rng = np.random.default_rng(7)
        a = random_limbs(BASIS, DEGREE, rng)
        ctx = BatchNttContext(DEGREE, BASIS)
        with thread_scope(1):
            fwd_serial = ctx.forward(a)
            inv_serial = ctx.inverse(fwd_serial)
        with thread_scope(threads):
            fwd = ctx.forward(a)
            inv = ctx.inverse(fwd)
        assert np.array_equal(fwd, fwd_serial)
        assert np.array_equal(inv, inv_serial)
        assert np.array_equal(inv, a)

    def test_threaded_counter_fires(self):
        rng = np.random.default_rng(8)
        a = random_limbs(BASIS, DEGREE, rng)
        ctx = BatchNttContext(DEGREE, BASIS)
        with tracing() as counts:
            with thread_scope(3):
                ctx.forward(a)
        assert counts.get("ckks.batch_ntt.threaded", 0) >= 1
        with tracing() as counts:
            with thread_scope(1):
                ctx.forward(a)
        assert "ckks.batch_ntt.threaded" not in counts

    def test_leading_axes_fall_back_to_serial(self):
        rng = np.random.default_rng(9)
        a = random_limbs(BASIS, DEGREE, rng, lead=(3,))
        ctx = BatchNttContext(DEGREE, BASIS)
        with thread_scope(1):
            want = ctx.forward(a)
        with tracing() as counts:
            with thread_scope(3):
                got = ctx.forward(a)
        assert np.array_equal(got, want)
        assert "ckks.batch_ntt.threaded" not in counts


class TestThreadedBconv:
    def test_bit_identical_to_serial(self):
        rng = np.random.default_rng(11)
        src, dst = BASIS[:4], BASIS[4:]
        poly = RnsPolynomial(random_limbs(src, DEGREE, rng), src,
                             is_ntt=False)
        with thread_scope(1):
            want = basis_convert(poly, dst)
        with thread_scope(3):
            got = basis_convert(poly, dst)
        assert np.array_equal(got.coeffs, want.coeffs)
        assert got.basis == want.basis
