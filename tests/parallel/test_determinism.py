"""Byte-identity of pooled execution with the serial paths.

The headline property of the parallel engine: every observable output
of a ``--workers N`` run — serve documents, checkpoint files, merged
metrics digests, campaign matrices — is byte-identical to ``--workers
1``.  Scripted unit behavior is shared between the parent's serial
runner and the pool workers through module globals, which forked
workers inherit (the pool is created lazily, after each test sets its
script), so serial and pooled runs execute the same deterministic
retry/degradation story.
"""

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError
from repro.obs.metrics import MetricsRegistry
from repro.serving.jobs import JobRunner, JobSpec, ServePolicy

PARENT_PID = os.getpid()

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="scripted pool units need fork inheritance")

#: Scripted unit behavior, keyed by ``job.id:unit``.  Module globals so
#: the (forked) pool workers replay the exact script the parent set.
FAIL_SCRIPT: dict = {}
END_SCRIPT: dict = {}
CRASH_UNITS: set = set()


class ScriptedRunner(JobRunner):
    """JobRunner whose units are a pure function of the module script:
    ``FAIL_SCRIPT[key]`` attempts raise FaultError before one succeeds
    with end state ``END_SCRIPT.get(key, "healthy")``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._scripted_failures = dict(FAIL_SCRIPT)

    def _execute_unit(self, job, unit, degraded):
        key = f"{job.id}:{unit}"
        if self._scripted_failures.get(key, 0) > 0:
            self._scripted_failures[key] -= 1
            raise FaultError(f"scripted failure for {key}")
        return {"unit": unit, "degraded": degraded,
                "end_state": END_SCRIPT.get(key, "healthy")}


def scripted_pool_attempt(task):
    """Worker-side twin of ``_pool_attempt`` over the scripted runner."""
    registry = MetricsRegistry() if task.collect_metrics else None
    runner = ScriptedRunner([task.job], task.policy, metrics=registry)
    doc = runner._attempt_unit(task.job, task.unit, task.key,
                               task.degraded)
    return doc, registry


def crashing_pool_attempt(task):
    """Kill the worker process on scripted units; safe in the parent
    (the inline crash-recovery rerun goes through here too)."""
    if task.unit in CRASH_UNITS and os.getpid() != PARENT_PID:
        os._exit(1)
    return scripted_pool_attempt(task)


def set_script(failures=None, end_states=None, crash_units=()):
    FAIL_SCRIPT.clear()
    FAIL_SCRIPT.update(failures or {})
    END_SCRIPT.clear()
    END_SCRIPT.update(end_states or {})
    CRASH_UNITS.clear()
    CRASH_UNITS.update(crash_units)


def scripted_run(workloads, workers, pool_fn=scripted_pool_attempt,
                 **kwargs):
    jobs = [JobSpec(id="0-run", kind="run", workloads=tuple(workloads))]
    registry = MetricsRegistry()
    runner = ScriptedRunner(jobs, kwargs.pop("policy", ServePolicy()),
                            workers=workers, pool_task_fn=pool_fn,
                            metrics=registry, **kwargs)
    doc = runner.run()
    return runner, doc, registry


def canon(doc):
    return json.dumps(doc, sort_keys=True)


WORKLOADS = ("A", "B", "C", "D")


@needs_fork
class TestServeByteIdentity:
    @given(fails=st.lists(st.integers(0, 2), min_size=4, max_size=4),
           degrade_at=st.integers(-1, 3))
    @settings(max_examples=5, deadline=None)
    def test_docs_and_digests_match_serial(self, fails, degrade_at):
        failures = {f"0-run:{u}": n
                    for u, n in zip(WORKLOADS, fails) if n}
        end_states = ({f"0-run:{WORKLOADS[degrade_at]}": "gpu-only"}
                      if degrade_at >= 0 else {})
        set_script(failures, end_states)
        _, serial_doc, serial_reg = scripted_run(WORKLOADS, workers=1)
        for workers in (2, 4):
            _, doc, registry = scripted_run(WORKLOADS, workers=workers)
            assert canon(doc) == canon(serial_doc)
            assert registry.digest() == serial_reg.digest()

    def test_degradation_carry_over_matches_serial(self):
        # Unit B ends GPU_ONLY: C and D must re-dispatch re-lowered.
        set_script(end_states={"0-run:B": "gpu-only"})
        _, serial_doc, _ = scripted_run(WORKLOADS, workers=1)
        _, doc, _ = scripted_run(WORKLOADS, workers=2)
        assert canon(doc) == canon(serial_doc)
        units = doc["jobs"][0]["units"]
        assert not units["A"]["result"]["degraded"]
        assert units["C"]["result"]["degraded"]
        assert units["D"]["result"]["degraded"]

    def test_checkpoint_files_identical(self, tmp_path):
        set_script(failures={"0-run:B": 1})
        serial_ckpt = tmp_path / "serial.json"
        pooled_ckpt = tmp_path / "pooled.json"
        scripted_run(WORKLOADS, workers=1, checkpoint_path=serial_ckpt)
        scripted_run(WORKLOADS, workers=2, checkpoint_path=pooled_ckpt)
        assert serial_ckpt.read_bytes() == pooled_ckpt.read_bytes()

    def test_interrupt_and_resume_matches_uninterrupted(self, tmp_path):
        set_script(failures={"0-run:C": 2})
        _, full_doc, _ = scripted_run(WORKLOADS, workers=1)
        ckpt = tmp_path / "ckpt.json"
        _, partial_doc, _ = scripted_run(
            WORKLOADS, workers=2, checkpoint_path=ckpt, max_units=2)
        assert partial_doc["interrupted"]
        assert ckpt.exists()
        _, resumed_doc, _ = scripted_run(
            WORKLOADS, workers=2, resume_path=ckpt)
        assert canon(resumed_doc) == canon(full_doc)
        # Restored units re-merge nothing, so the lifetime registry
        # only holds the fresh half — the *document* identity is the
        # resume contract, matching the serial resume semantics.

    def test_worker_status_accounts_every_fresh_unit(self):
        set_script()
        runner, doc, _ = scripted_run(WORKLOADS, workers=2)
        assert doc["ok"]
        assert sum(s["units"] for s in runner.worker_status.values()) \
            == len(WORKLOADS)
        assert all(label == "parent" or label.startswith("w")
                   for label in runner.worker_status)


@needs_fork
class TestCrashRecovery:
    def test_killed_worker_unit_reruns_inline_identically(self):
        set_script(failures={"0-run:B": 1}, crash_units={"B"})
        worker_reg = MetricsRegistry()
        runner, doc, _ = scripted_run(
            WORKLOADS, workers=2, pool_fn=crashing_pool_attempt,
            worker_metrics=worker_reg)
        set_script(failures={"0-run:B": 1})
        _, serial_doc, _ = scripted_run(WORKLOADS, workers=1)
        assert canon(doc) == canon(serial_doc)
        assert "parent" in runner.worker_status
        crashes = [s["samples"][0]["value"]
                   for s in worker_reg.snapshot()["metrics"]
                   if s["name"] == "anaheim_worker_crashes_total"]
        assert crashes and crashes[0] >= 1

    def test_resume_after_crashy_interrupted_run(self, tmp_path):
        # Kill workers on unit C, interrupt after two units, resume
        # with a healthy pool: final document matches a clean serial
        # run end to end.
        set_script(crash_units={"C"})
        ckpt = tmp_path / "ckpt.json"
        scripted_run(WORKLOADS, workers=2, pool_fn=crashing_pool_attempt,
                     checkpoint_path=ckpt, max_units=3)
        set_script()
        _, resumed_doc, _ = scripted_run(WORKLOADS, workers=2,
                                         resume_path=ckpt)
        _, serial_doc, _ = scripted_run(WORKLOADS, workers=1)
        assert canon(resumed_doc) == canon(serial_doc)


@needs_fork
class TestCampaignByteIdentity:
    def test_analytic_matrix_matches_serial(self):
        from repro.faults.campaign import run_matrix
        serial_reg = MetricsRegistry()
        serial = run_matrix(seeds=(0, 1), functional=False,
                            record_wall=False, metrics=serial_reg)
        pooled_reg = MetricsRegistry()
        pooled = run_matrix(seeds=(0, 1), functional=False,
                            record_wall=False, metrics=pooled_reg,
                            workers=2)
        assert canon(pooled) == canon(serial)
        assert pooled_reg.digest() == serial_reg.digest()
