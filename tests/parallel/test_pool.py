"""Tier-1 process pool: ordered commit, crash containment, timeline.

The pool functions under test must be module-level (they are pickled
into worker processes).  The crash tests mark tasks that call
``os._exit`` only when executed in a *child* process — the parent pid
is captured at import time and inherited by forked workers — so the
parent's inline fallback path stays safe.
"""

import multiprocessing
import os

import pytest

from repro.errors import ParameterError
from repro.parallel import PoolResult, WorkerPool, pool_timeline

PARENT_PID = os.getpid()

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def double(task):
    return task * 2


def raise_value_error(task):
    raise ValueError(f"scripted failure for {task}")


def crash_in_child(task):
    if os.getpid() != PARENT_PID:
        os._exit(1)
    return f"parent:{task}"


def crash_on_boom(task):
    if task == "boom" and os.getpid() != PARENT_PID:
        os._exit(1)
    return f"ok:{task}"


class TestInlinePath:
    def test_empty_tasks(self):
        assert WorkerPool(2).run(double, []) == []

    def test_workers_one_runs_inline(self):
        results = WorkerPool(1).run(double, [1, 2, 3])
        assert [r.value for r in results] == [2, 4, 6]
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.worker == os.getpid() for r in results)
        assert not any(r.crashed for r in results)

    def test_single_task_runs_inline_even_with_many_workers(self):
        with WorkerPool(4) as pool:
            results = pool.run(double, [21])
        assert results[0].value == 42
        assert results[0].worker == os.getpid()

    def test_worker_count_validated(self):
        with pytest.raises(ParameterError):
            WorkerPool(0)

    def test_inline_exception_propagates(self):
        with pytest.raises(ValueError):
            WorkerPool(1).run(raise_value_error, ["x"])


class TestPooledExecution:
    def test_results_in_task_order(self):
        with WorkerPool(2) as pool:
            results = pool.run(double, list(range(6)))
        assert [r.index for r in results] == list(range(6))
        assert [r.value for r in results] == [0, 2, 4, 6, 8, 10]
        assert all(r.worker > 0 for r in results)
        assert not any(r.crashed for r in results)

    def test_worker_exception_propagates(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError):
                pool.run(raise_value_error, ["x", "y"])


@pytest.mark.skipif(not HAVE_FORK, reason="crash scripting needs fork")
class TestCrashContainment:
    def test_every_unit_crashing_is_contained(self):
        with WorkerPool(2) as pool:
            results = pool.run(crash_in_child, ["a", "b", "c"])
            assert [r.index for r in results] == [0, 1, 2]
            assert all(r.crashed for r in results)
            assert all(r.value is None for r in results)
            assert all("died" in r.error for r in results)
            assert pool.crashes == 3

    def test_one_crash_spares_the_rest(self):
        tasks = ["a", "boom", "b", "c", "d"]
        with WorkerPool(2) as pool:
            results = pool.run(crash_on_boom, tasks)
        assert [r.index for r in results] == list(range(len(tasks)))
        assert pool.crashes >= 1
        crashed = [r for r in results if r.crashed]
        assert crashed  # the boom unit (pool may over-blame a neighbor)
        for r in results:
            if not r.crashed:
                assert r.value == f"ok:{tasks[r.index]}"

    def test_caller_can_rerun_crashed_units_inline(self):
        with WorkerPool(2) as pool:
            results = pool.run(crash_in_child, ["a", "b"])
        redone = [crash_in_child(task) if res.crashed else res.value
                  for task, res in zip(["a", "b"], results)]
        assert redone == ["parent:a", "parent:b"]


class TestPoolTimeline:
    def test_uniform_costs_saturate_lanes(self):
        t = pool_timeline([1.0] * 8, 4)
        assert t["units"] == 8 and t["workers"] == 4
        assert t["serial_s"] == 8.0
        assert t["makespan_s"] == 2.0
        assert t["speedup"] == 4.0
        assert t["assignment"] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_greedy_least_loaded_assignment(self):
        t = pool_timeline([3.0, 1.0, 1.0, 1.0], 2)
        assert t["assignment"] == [0, 1, 1, 1]
        assert t["lane_busy_s"] == [3.0, 3.0]
        assert t["makespan_s"] == 3.0
        assert t["speedup"] == 2.0

    def test_busy_time_closes_against_serial_total(self):
        costs = [0.7, 1.3, 0.2, 2.1, 0.9]
        t = pool_timeline(costs, 3)
        assert sum(t["lane_busy_s"]) == pytest.approx(t["serial_s"])
        assert t["makespan_s"] <= t["serial_s"]

    def test_deterministic(self):
        costs = [0.5, 1.5, 0.25, 0.75, 1.0]
        assert pool_timeline(costs, 3) == pool_timeline(costs, 3)

    def test_empty_and_single_lane(self):
        t = pool_timeline([], 4)
        assert t["makespan_s"] == 0.0 and t["speedup"] == 1.0
        t = pool_timeline([1.0, 2.0], 1)
        assert t["speedup"] == 1.0
        with pytest.raises(ParameterError):
            pool_timeline([1.0], 0)
