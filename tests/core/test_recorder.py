"""Tests for the recording evaluator (functional -> performance bridge)."""

import numpy as np
import pytest

from repro.core.framework import AnaheimFramework
from repro.core.recorder import RecordingEvaluator, scale_blocks
from repro.ckks.keys import KeyGenerator
from repro.gpu.configs import A100_80GB
from repro.params import paper_params, toy_params
from repro.pim.configs import A100_NEAR_BANK


@pytest.fixture(scope="module")
def recording_ctx():
    params = toy_params(degree=2 ** 8, level_count=6, aux_count=2)
    keygen = KeyGenerator(params, seed=5)
    keys = keygen.generate(rotations=[1, 2], include_conjugation=True)
    return RecordingEvaluator(params, keys)


@pytest.fixture()
def message(recording_ctx):
    rng = np.random.default_rng(0)
    n = recording_ctx.params.slot_count
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestRecording:
    def test_still_computes_correctly(self, recording_ctx, message):
        ct = recording_ctx.encrypt_message(message)
        out = recording_ctx.multiply(ct, ct)
        got = recording_ctx.decrypt_message(out)
        assert np.abs(got - message ** 2).max() < 5e-3

    def test_multiply_records_hmult_shape(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        recording_ctx.multiply(ct, ct)
        kinds = [b.kind for b in recording_ctx.recorded]
        assert kinds == ["tensor", "modup", "keymult", "moddown_pair",
                         "hadd", "rescale_pair"]

    def test_rotate_records_hrot_shape(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        recording_ctx.rotate(ct, 1)
        kinds = [b.kind for b in recording_ctx.recorded]
        assert "automorphism_pair" in kinds
        assert "keymult" in kinds

    def test_zero_rotation_records_nothing(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        recording_ctx.rotate(ct, 0)
        assert recording_ctx.recorded == []

    def test_add_and_plain_ops(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        p = recording_ctx.encoder.encode(message)
        recording_ctx.add(ct, ct)
        recording_ctx.mul_plain(ct, p)
        kinds = [b.kind for b in recording_ctx.recorded]
        assert kinds == ["hadd", "pmult_pair", "rescale_pair"]

    def test_limbs_track_levels(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        deep = recording_ctx.multiply(ct, ct)
        recording_ctx.multiply(deep, deep)
        tensors = [b for b in recording_ctx.recorded if b.kind == "tensor"]
        assert tensors[0].limbs > tensors[1].limbs


class TestScalingToPaperParams:
    def test_scaled_program_costs_at_paper_scale(self, recording_ctx,
                                                 message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        out = recording_ctx.multiply(ct, ct)
        recording_ctx.rotate(out, 2)
        target = paper_params()
        blocks = scale_blocks(recording_ctx.recorded,
                              recording_ctx.params, target)
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK)
        runs = framework.compare(blocks, target.degree, label="recorded")
        gpu = runs["gpu"].report
        pim = runs["pim"].report
        assert gpu.total_time > 0
        assert pim.total_time < gpu.total_time
        assert pim.pim_time > 0

    def test_limb_ratio(self, recording_ctx, message):
        recording_ctx.reset_recording()
        ct = recording_ctx.encrypt_message(message)
        recording_ctx.multiply(ct, ct)
        target = paper_params()
        blocks = scale_blocks(recording_ctx.recorded,
                              recording_ctx.params, target)
        tensor = next(b for b in blocks if b.kind == "tensor")
        # 6 functional limbs -> 54 paper limbs: a full-level op maps to 54.
        assert tensor.limbs == 54
        keymult = next(b for b in blocks if b.kind == "keymult")
        assert keymult.aux == target.aux_count
        assert keymult.dnum == target.dnum
