"""Invariants of ScheduleReport.scaled/merged and the empty-input paths."""

import itertools

import pytest

from repro.analysis.breakdown import merge_reports
from repro.core.framework import AnaheimFramework
from repro.core.gantt import _GLYPHS, render_breakdown, render_gantt
from repro.core.scheduler import ScheduleReport
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.pim.configs import A100_NEAR_BANK
from repro.workloads.linear_transform_trace import hoisted_block


def _report(label="r", total=2.0, gpu=1.2, pim=0.6, transitions=5):
    report = ScheduleReport(label=label)
    report.total_time = total
    report.gpu_time = gpu
    report.pim_time = pim
    report.transition_time = total - gpu - pim
    report.transitions = transitions
    report.time_by_category = {OpCategory.NTT: gpu * 0.5,
                               OpCategory.ELEMENTWISE: pim,
                               OpCategory.BCONV: gpu * 0.5}
    report.gpu_dram_bytes = 4e9
    report.pim_internal_bytes = 9e9
    report.pim_activations = 1000
    report.energy_gpu_dynamic = 3.0
    report.energy_gpu_idle = 0.5
    report.energy_pim = 1.5
    return report


class TestScaled:
    def test_energy_scales_linearly(self):
        report = _report()
        scaled = report.scaled(3.0)
        assert scaled.energy == pytest.approx(3.0 * report.energy)
        assert scaled.energy_pim == pytest.approx(3.0 * report.energy_pim)

    def test_edp_scales_quadratically(self):
        # EDP = E * T, so scaling the schedule k-fold scales EDP k^2-fold.
        report = _report()
        assert report.scaled(3.0).edp == pytest.approx(9.0 * report.edp)

    def test_transitions_truncate_on_fractional_factor(self):
        report = _report(transitions=5)
        assert report.scaled(0.5).transitions == 2    # int(2.5)
        assert report.scaled(1.9).transitions == 9    # int(9.5)
        assert report.scaled(0.5).pim_activations == 500

    def test_category_keys_preserved(self):
        report = _report()
        scaled = report.scaled(0.25)
        assert set(scaled.time_by_category) == set(report.time_by_category)
        for key, value in report.time_by_category.items():
            assert scaled.time_by_category[key] == pytest.approx(0.25 * value)

    def test_segments_dropped(self):
        report = _report()
        report.segments = [object()]
        assert report.scaled(2.0).segments == []


class TestMerged:
    def test_energy_additivity(self):
        a, b = _report("a"), _report("b", total=1.0, gpu=0.7, pim=0.2)
        merged = a.merged(b)
        assert merged.energy == pytest.approx(a.energy + b.energy)
        assert merged.total_time == pytest.approx(a.total_time + b.total_time)
        assert merged.transitions == a.transitions + b.transitions

    def test_edp_is_not_additive(self):
        # (Ea+Eb)(Ta+Tb) != EaTa + EbTb — the merged EDP is the product
        # of the summed components, by design.
        a, b = _report("a"), _report("b", total=1.0)
        merged = a.merged(b)
        assert merged.edp == pytest.approx(merged.energy * merged.total_time)
        assert merged.edp != pytest.approx(a.edp + b.edp)

    def test_category_union_preserved(self):
        a = _report("a")
        b = _report("b")
        del b.time_by_category[OpCategory.BCONV]
        b.time_by_category[OpCategory.AUTOMORPHISM] = 0.1
        merged = a.merged(b)
        assert set(merged.time_by_category) == (set(a.time_by_category)
                                               | set(b.time_by_category))
        assert merged.time_by_category[OpCategory.NTT] == pytest.approx(
            a.time_by_category[OpCategory.NTT]
            + b.time_by_category[OpCategory.NTT])
        assert merged.time_by_category[OpCategory.AUTOMORPHISM] == \
            pytest.approx(0.1)

    def test_label_override(self):
        merged = _report("a").merged(_report("b"), label="sum")
        assert merged.label == "sum"
        assert _report("a").merged(_report("b")).label == "a"

    def test_merge_does_not_mutate_inputs(self):
        a, b = _report("a"), _report("b")
        before = dict(a.time_by_category)
        a.merged(b)
        assert a.time_by_category == before


class TestEmptyInputs:
    def test_merge_reports_empty_returns_empty_report(self):
        merged = merge_reports([], label="empty")
        assert isinstance(merged, ScheduleReport)
        assert merged.label == "empty"
        assert merged.total_time == 0.0
        assert merged.energy == 0.0
        assert merged.time_by_category == {}

    def test_merge_reports_single(self):
        report = _report()
        merged = merge_reports([report])
        assert merged.total_time == pytest.approx(report.total_time)

    def test_render_breakdown_empty_dict(self):
        art = render_breakdown({})
        assert isinstance(art, str)
        assert "no reports" in art


class TestGanttGlyphs:
    def test_every_category_mapped_on_both_devices(self):
        for key in itertools.product(("gpu", "pim"),
                                     (c.value for c in OpCategory)):
            assert key in _GLYPHS, f"missing Gantt glyph for {key}"

    def test_glyphs_distinct_per_device(self):
        for device in ("gpu", "pim"):
            glyphs = [g for (d, _), g in _GLYPHS.items() if d == device]
            assert len(glyphs) == len(set(glyphs))

    def test_no_question_marks_for_scheduled_workload(self):
        params = paper_params()
        blocks = hoisted_block(params.level_count, params.aux_count,
                               params.dnum, rotations=4)
        framework = AnaheimFramework(A100_80GB, A100_NEAR_BANK,
                                     keep_segments=True)
        report = framework.run(blocks, params.degree, label="glyphs").report
        devices = {s.device for s in report.segments}
        categories = {s.category for s in report.segments}
        assert "pim" in devices
        assert OpCategory.TRANSFER in categories  # modup write-backs
        assert "?" not in render_gantt(report, width=120)
