"""Property-based invariants of the lowering compiler and scheduler.

Random block programs are generated with hypothesis; the invariants
must hold for *any* program, not just the curated workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import blocks as B
from repro.core.fusion import (GPU_ALL_FUSE, GPU_BASE, GPU_BASIC_FUSE,
                               PIM_FULL, PIM_NO_CP, lower)
from repro.core.scheduler import Scheduler
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.gpu.model import GpuModel
from repro.pim.configs import A100_NEAR_BANK
from repro.pim.executor import PimExecutor

N = 2 ** 16
AUX, DNUM = 14, 4


@st.composite
def block_programs(draw):
    """A random program of 1-8 blocks with random limb counts."""
    makers = [
        lambda limbs: B.mod_up(limbs, AUX, DNUM),
        lambda limbs: B.key_mult(limbs, AUX, DNUM),
        lambda limbs: B.pmult_pair(limbs),
        lambda limbs: B.mac_pair(limbs),
        lambda limbs: B.aut_accum(limbs + AUX, 4),
        lambda limbs: B.mod_down(limbs, AUX),
        lambda limbs: B.rescale_pair(max(limbs, 2)),
        lambda limbs: B.tensor(limbs),
        lambda limbs: B.hadd(limbs),
        lambda limbs: B.caccum(limbs, 8),
    ]
    count = draw(st.integers(1, 8))
    program = []
    for _ in range(count):
        maker = draw(st.sampled_from(makers))
        limbs = draw(st.integers(2, 54))
        program.append(maker(limbs))
    return program


def _schedule(trace):
    scheduler = Scheduler(GpuModel(A100_80GB),
                          PimExecutor(A100_NEAR_BANK))
    return scheduler.run(trace)


class TestLoweringInvariants:
    @given(block_programs())
    @settings(max_examples=40, deadline=None)
    def test_lowering_is_deterministic(self, program):
        a = lower(program, N, PIM_FULL)
        b = lower(program, N, PIM_FULL)
        assert [k.name for k in a] == [k.name for k in b]

    @given(block_programs())
    @settings(max_examples=40, deadline=None)
    def test_basic_fusion_never_increases_gpu_traffic(self, program):
        unfused = lower(program, N, GPU_BASE).total_gpu_bytes()
        fused = lower(program, N, GPU_BASIC_FUSE).total_gpu_bytes()
        assert fused <= unfused + 1e-6

    @given(block_programs())
    @settings(max_examples=40, deadline=None)
    def test_offload_moves_only_elementwise(self, program):
        trace = lower(program, N, PIM_FULL)
        for kernel in trace.pim_kernels():
            assert kernel.category == OpCategory.ELEMENTWISE
        # NTT/BConv work is identical with and without offloading.
        gpu_trace = lower(program, N, GPU_ALL_FUSE)
        compute = lambda t, c: sum(k.mod_ops for k in t.gpu_kernels()
                                   if k.category == c)
        for category in (OpCategory.NTT, OpCategory.BCONV):
            assert compute(trace, category) == pytest.approx(
                compute(gpu_trace, category))

    @given(block_programs())
    @settings(max_examples=40, deadline=None)
    def test_offload_reduces_gpu_elementwise_bytes(self, program):
        gpu_trace = lower(program, N, GPU_ALL_FUSE)
        pim_trace = lower(program, N, PIM_FULL)
        ew_bytes = lambda t: sum(k.total_bytes for k in t.gpu_kernels()
                                 if k.category == OpCategory.ELEMENTWISE)
        assert ew_bytes(pim_trace) <= ew_bytes(gpu_trace) + 1e-6


class TestSchedulerInvariants:
    @given(block_programs())
    @settings(max_examples=25, deadline=None)
    def test_report_accounting_closes(self, program):
        report = _schedule(lower(program, N, PIM_FULL))
        assert report.total_time == pytest.approx(
            report.gpu_time + report.pim_time + report.transition_time)
        assert report.total_time >= 0
        assert report.energy > 0
        assert sum(report.time_by_category.values()) == pytest.approx(
            report.gpu_time + report.pim_time)

    @given(block_programs(), block_programs())
    @settings(max_examples=25, deadline=None)
    def test_concatenation_is_nearly_additive(self, first, second):
        t1 = _schedule(lower(first, N, PIM_FULL)).total_time
        t2 = _schedule(lower(second, N, PIM_FULL)).total_time
        combined = _schedule(lower(first + second, N, PIM_FULL)).total_time
        # Only a transition overhead at the seam can differ.
        assert combined == pytest.approx(
            t1 + t2, abs=2 * A100_80GB.pim_transition_overhead + 1e-9)

    @given(block_programs())
    @settings(max_examples=25, deadline=None)
    def test_no_cp_is_never_faster(self, program):
        with_cp = _schedule(lower(program, N, PIM_FULL)).total_time
        without = _schedule(lower(program, N, PIM_NO_CP)).total_time
        assert without >= with_cp - 1e-12

    @given(block_programs())
    @settings(max_examples=25, deadline=None)
    def test_pipelining_bound_is_a_lower_bound(self, program):
        report = _schedule(lower(program, N, PIM_FULL))
        assert report.pipelining_bound() <= report.total_time + 1e-12
        assert report.pipelining_headroom() >= 1.0
