"""Tests for the hybrid stream-queue scheduler and Gantt rendering."""

import pytest

from repro.core import blocks as B
from repro.core.fusion import GPU_ALL_FUSE, PIM_FULL, lower
from repro.core.gantt import render_breakdown, render_gantt
from repro.core.scheduler import Scheduler
from repro.core.trace import OpCategory, Trace
from repro.gpu.configs import A100_80GB
from repro.gpu.model import GpuModel
from repro.pim.configs import A100_NEAR_BANK
from repro.pim.executor import PimExecutor

N = 2 ** 16
L, AUX, D = 54, 14, 4


@pytest.fixture()
def scheduler():
    return Scheduler(GpuModel(A100_80GB), PimExecutor(A100_NEAR_BANK))


def _hybrid_trace():
    blocks = [B.mod_up(L, AUX, D), B.key_mult(L, AUX, D),
              B.aut_accum(L + AUX, 4), B.mod_down(L, AUX)]
    return lower(blocks, N, PIM_FULL, label="hybrid")


class TestScheduling:
    def test_total_is_sum_of_parts(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        assert report.total_time == pytest.approx(
            report.gpu_time + report.pim_time + report.transition_time)

    def test_transitions_counted(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        # GPU modup -> PIM keymult+ep -> GPU autaccum/moddown boundaries.
        assert report.transitions >= 2
        assert report.transition_time == pytest.approx(
            report.transitions * A100_80GB.pim_transition_overhead)

    def test_segments_are_contiguous(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        clock = 0.0
        for segment in report.segments:
            assert segment.start >= clock - 1e-12
            assert segment.end > segment.start
            clock = segment.end
        assert clock == pytest.approx(report.total_time)

    def test_category_times_sum_to_busy_time(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        assert sum(report.time_by_category.values()) == pytest.approx(
            report.gpu_time + report.pim_time)

    def test_pim_trace_without_executor_rejected(self):
        gpu_only = Scheduler(GpuModel(A100_80GB), pim_executor=None)
        with pytest.raises(ValueError):
            gpu_only.run(_hybrid_trace())

    def test_gpu_only_trace_has_no_transitions(self, scheduler):
        blocks = [B.mod_up(L, AUX, D), B.mod_down(L, AUX)]
        trace = lower(blocks, N, GPU_ALL_FUSE)
        report = scheduler.run(trace)
        assert report.transitions == 0
        assert report.pim_time == 0.0

    def test_energy_composition(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        assert report.energy == pytest.approx(
            report.energy_gpu_dynamic + report.energy_gpu_idle
            + report.energy_pim)
        assert report.energy_gpu_idle == pytest.approx(
            A100_80GB.idle_power * report.total_time)
        assert report.energy_pim > 0

    def test_scaled_and_merged(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        double = report.scaled(2.0)
        assert double.total_time == pytest.approx(2 * report.total_time)
        assert double.energy == pytest.approx(2 * report.energy)
        merged = report.merged(report)
        assert merged.total_time == pytest.approx(2 * report.total_time)

    def test_edp(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        assert report.edp == pytest.approx(report.energy * report.total_time)


class TestGantt:
    def test_render_contains_devices(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        art = render_gantt(report, width=80)
        assert "GPU |" in art
        assert "PIM |" in art
        assert "P" in art.split("PIM |")[1]

    def test_render_without_segments(self, scheduler):
        sparse = Scheduler(GpuModel(A100_80GB),
                           PimExecutor(A100_NEAR_BANK),
                           keep_segments=False)
        report = sparse.run(_hybrid_trace())
        assert "no segments" in render_gantt(report)

    def test_breakdown_table(self, scheduler):
        report = scheduler.run(_hybrid_trace())
        table = render_breakdown({"hybrid": report})
        assert "Element-wise" in table
        assert "hybrid" in table

    def test_empty_trace(self, scheduler):
        report = scheduler.run(Trace(label="empty"))
        assert report.total_time == 0.0
        assert report.category_share(OpCategory.NTT) == 0.0
