"""Tests for block lowering, kernel fusion levels, and PIM offloading."""

import pytest

from repro.core import blocks as B
from repro.core.fusion import (GPU_ALL_FUSE, GPU_BASE, GPU_BASIC_FUSE,
                               GPU_EXTRA_FUSE, PIM_BASE, PIM_BASIC_FUSE,
                               PIM_FULL, PIM_NO_CP, LoweringOptions, lower)
from repro.core.trace import GpuKernel, OpCategory, PimKernel
from repro.errors import ParameterError

N = 2 ** 16
L, AUX, D = 54, 14, 4


class TestBasicFusion:
    def test_keymult_fuses_to_paccum(self):
        blocks = [B.key_mult(L, AUX, D)]
        unfused = lower(blocks, N, GPU_BASE)
        fused = lower(blocks, N, GPU_BASIC_FUSE)
        assert len(unfused) == 2 * D + 2 * (D - 1)
        assert len(fused) == 1
        assert fused.kernels[0].name == "keymult.paccum"

    def test_fusion_reduces_traffic(self):
        # Fused kernels skip the intermediate accumulator round trips.
        blocks = [B.key_mult(L, AUX, D)]
        unfused = lower(blocks, N, GPU_BASE).total_gpu_bytes()
        fused = lower(blocks, N, GPU_BASIC_FUSE).total_gpu_bytes()
        assert fused < unfused

    def test_tensor_fusion(self):
        blocks = [B.tensor(L)]
        assert len(lower(blocks, N, GPU_BASE)) == 5
        assert len(lower(blocks, N, GPU_BASIC_FUSE)) == 1

    def test_caccum_fusion(self):
        blocks = [B.caccum(L, 8)]
        assert len(lower(blocks, N, GPU_BASE)) == 16
        assert len(lower(blocks, N, GPU_BASIC_FUSE)) == 1


class TestAutFusion:
    def test_aut_accum_single_kernel(self):
        blocks = [B.aut_accum(L + AUX, 8)]
        fused = lower(blocks, N, GPU_ALL_FUSE)
        assert len(fused) == 1
        assert fused.kernels[0].category == OpCategory.AUTOMORPHISM

    def test_unfused_emits_per_rotation_kernels(self):
        blocks = [B.aut_accum(L + AUX, 8)]
        unfused = lower(blocks, N, GPU_BASIC_FUSE)
        auts = [k for k in unfused
                if k.category == OpCategory.AUTOMORPHISM]
        assert len(auts) == 8
        assert len(unfused) == 8 + 7       # + accumulation kernels

    def test_fusion_reduces_automorphism_traffic(self):
        blocks = [B.aut_accum(L + AUX, 8)]
        fused = lower(blocks, N, GPU_ALL_FUSE).total_gpu_bytes()
        unfused = lower(blocks, N, GPU_BASIC_FUSE).total_gpu_bytes()
        assert fused < unfused


class TestExtraFusion:
    def test_moddown_ep_fused_only_with_extra_fuse(self):
        blocks = [B.mod_down(L, AUX)]
        base = lower(blocks, N, GPU_BASIC_FUSE)
        extra = lower(blocks, N, GPU_EXTRA_FUSE)
        base_ew = [k for k in base if k.category == OpCategory.ELEMENTWISE]
        extra_ew = [k for k in extra if k.category == OpCategory.ELEMENTWISE]
        assert len(extra_ew) <= len(base_ew)


class TestOffload:
    def test_elementwise_becomes_pim_kernels(self):
        blocks = [B.key_mult(L, AUX, D), B.pmult_pair(L)]
        trace = lower(blocks, N, PIM_FULL)
        pim = trace.pim_kernels()
        assert len(pim) == 2
        assert pim[0].instruction == "PAccum"
        assert pim[0].fan_in == D
        assert pim[1].instruction == "PMult"

    def test_unfused_offload_uses_simple_instructions(self):
        blocks = [B.key_mult(L, AUX, D)]
        trace = lower(blocks, N, PIM_BASE)
        instructions = {k.instruction for k in trace.pim_kernels()}
        assert instructions == {"Mult", "Add"}

    def test_modup_gains_writeback_when_offloading(self):
        blocks = [B.mod_up(L, AUX, D)]
        gpu_only = lower(blocks, N, GPU_ALL_FUSE)
        offloaded = lower(blocks, N, PIM_FULL)
        wb_gpu = [k for k in gpu_only.gpu_kernels()
                  if k.has_tag("writeback")]
        wb_pim = [k for k in offloaded.gpu_kernels()
                  if k.has_tag("writeback")]
        assert not wb_gpu
        assert len(wb_pim) == 1
        # §V-D: up to 68MB written back for ModUp(a) at D=4.
        assert wb_pim[0].bytes_written == pytest.approx(
            D * (L + AUX) * N * 4)

    def test_no_cp_flag_propagates(self):
        blocks = [B.key_mult(L, AUX, D)]
        trace = lower(blocks, N, PIM_NO_CP)
        assert all(not k.column_partitioned for k in trace.pim_kernels())
        trace_cp = lower(blocks, N, PIM_FULL)
        assert all(k.column_partitioned for k in trace_cp.pim_kernels())

    def test_ntt_never_offloads(self):
        # §V-A: compute-bound (I)NTT/BConv stay on the GPU.
        blocks = [B.mod_up(L, AUX, D), B.key_mult(L, AUX, D),
                  B.mod_down(L, AUX)]
        trace = lower(blocks, N, PIM_FULL)
        for kernel in trace.pim_kernels():
            assert kernel.category == OpCategory.ELEMENTWISE
        gpu_cats = {k.category for k in trace.gpu_kernels()}
        assert OpCategory.NTT in gpu_cats
        assert OpCategory.BCONV in gpu_cats

    def test_automorphism_never_offloads(self):
        blocks = [B.aut_accum(L, 4), B.automorphism_pair(L)]
        trace = lower(blocks, N, PIM_FULL)
        assert not trace.pim_kernels()


class TestLoweringMisc:
    def test_unknown_block_rejected(self):
        with pytest.raises(ParameterError):
            lower([B.Block(kind="warp", limbs=1)], N, GPU_BASE)

    def test_describe(self):
        assert GPU_BASE.describe() == "Base"
        assert "PIM" in PIM_FULL.describe()
        assert "w/o CP" in PIM_NO_CP.describe()
        assert "BasicFuse" in PIM_BASIC_FUSE.describe()

    def test_trace_helpers(self):
        blocks = [B.hadd(L), B.rescale_pair(L)]
        trace = lower(blocks, N, GPU_ALL_FUSE, label="t")
        assert trace.label == "t"
        assert trace.count(OpCategory.ELEMENTWISE) == 1
        assert trace.count(OpCategory.NTT) == 4
        doubled = trace.repeated(2)
        assert len(doubled) == 2 * len(trace)

    def test_hadd_block(self):
        trace = lower([B.hadd(L)], N, GPU_BASE)
        kernel = trace.kernels[0]
        assert isinstance(kernel, GpuKernel)
        assert kernel.category == OpCategory.ELEMENTWISE
