"""Tests for analysis helpers, memory planning, and metrics."""

import pytest

from repro.analysis.breakdown import (breakdown_row, merge_reports,
                                      stacked_bars)
from repro.analysis.reporting import (format_bytes, format_ratio,
                                      format_seconds, format_table)
from repro.core import blocks as B
from repro.core.allocator import plan_memory
from repro.core.framework import AnaheimFramework
from repro.core.fusion import GPU_ALL_FUSE
from repro.core.trace import OpCategory
from repro.gpu.configs import A100_80GB
from repro.params import paper_params
from repro.workloads.metrics import (edp, edp_improvement,
                                     energy_efficiency_gain, geomean,
                                     speedup)

P = paper_params()


@pytest.fixture(scope="module")
def report():
    framework = AnaheimFramework(A100_80GB)
    blocks = [B.mod_up(20, P.aux_count, P.dnum), B.hadd(20)]
    return framework.run(blocks, P.degree, GPU_ALL_FUSE, label="r").report


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(4.2e-6) == "4.2us"

    def test_format_bytes(self):
        assert format_bytes(2.5e9) == "2.50GB"
        assert format_bytes(3.2e6) == "3.2MB"
        assert format_bytes(800) == "0.8KB"

    def test_format_ratio(self):
        assert format_ratio(1.6180) == "1.62x"


class TestBreakdownAnalysis:
    def test_breakdown_row_shares_sum_below_one(self, report):
        row = breakdown_row("x", report)
        assert 0.99 < sum(row.shares.values()) <= 1.01
        assert row.share(OpCategory.NTT) > 0

    def test_merge_reports(self, report):
        merged = merge_reports([report, report], label="2x")
        assert merged.total_time == pytest.approx(2 * report.total_time)
        assert merged.label == "2x"

    def test_stacked_bars_renders(self, report):
        art = stacked_bars([breakdown_row("alpha", report),
                            breakdown_row("beta", report)])
        assert "alpha" in art and "beta" in art
        assert "N=(I)NTT" in art

    def test_stacked_bars_empty(self):
        assert stacked_bars([]) == ""


class TestMetrics:
    def test_speedup_and_edp(self):
        assert speedup(2.0, 1.0) == 2.0
        assert energy_efficiency_gain(4.0, 2.0) == 2.0
        assert edp(3.0, 2.0) == 6.0

    def test_edp_improvement(self, report):
        assert edp_improvement(report, report) == pytest.approx(1.0)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestMemoryPlanning:
    def test_paper_scale_evk_budget(self):
        plan = plan_memory(P, evk_count=10, plaintext_limbs=0,
                           live_ciphertexts=0)
        # 10 evks x ~142MB, times the scratch factor.
        assert 1.4e9 < plan.evk_bytes < 1.5e9
        assert plan.total_bytes == pytest.approx(plan.raw_bytes * 1.3)

    def test_fits(self):
        plan = plan_memory(P, evk_count=100, plaintext_limbs=10000)
        assert plan.fits(80e9)
        assert not plan.fits(10e9)

    def test_describe_mentions_components(self):
        plan = plan_memory(P, evk_count=1, plaintext_limbs=1)
        text = plan.describe()
        assert "evk" in text and "pt" in text and "ct" in text
